//! Cross-workload sharding: run many conversion pipelines concurrently
//! over **one** shared thread budget.
//!
//! The ROADMAP's serving goal is many simultaneous conversions — one
//! [`crate::ConversionPipeline`] per scenario/config (ABR, flow
//! scheduling, routing, parameter sweeps). Naively spawning each
//! pipeline's stages on their own threads multiplies the thread count
//! (workloads × stage threads) and oversubscribes the machine. The
//! [`WorkloadRunner`] instead drives every workload on a lightweight
//! driver thread whose parallel stages all execute on the persistent
//! [`metis_nn::par::global`] worker pool:
//!
//! * **Shared budget** — at most `budget` workloads are *admitted* (run
//!   their driver) at once; inner stages borrow pool workers rather than
//!   spawning, so the process-wide compute thread count stays bounded by
//!   the pool size regardless of how many workloads are queued.
//! * **Fair scheduling** — each workload's submissions are tagged with a
//!   fresh pool group ([`metis_nn::par::with_group`]); the pool
//!   round-robins across groups, so a long workload cannot starve the
//!   rest. Admission itself is FIFO in submission order.
//! * **Determinism** — workloads share no mutable state and every pool
//!   stage merges by index, so each workload's result is **bit-identical
//!   to running it alone**, for any budget, pool size, or interleaving;
//!   results return in submission order.
//!
//! ```
//! use metis_core::{ConversionPipeline, Workload, WorkloadRunner};
//! use metis_rl::env::test_envs::BanditEnv;
//! use metis_rl::UniformPolicy;
//!
//! let pool: Vec<BanditEnv> = (0..2).map(|s| BanditEnv::new(3, 10, s)).collect();
//! let teacher = UniformPolicy { n_actions: 3 };
//! let results = WorkloadRunner::new(0).run(
//!     (0..3)
//!         .map(|seed| {
//!             let pool = &pool;
//!             let teacher = &teacher;
//!             Workload::new(format!("sweep-{seed}"), move || {
//!                 ConversionPipeline::new(pool, teacher, |_| 0.0)
//!                     .seed(seed)
//!                     .run()
//!             })
//!         })
//!         .collect(),
//! );
//! assert_eq!(results.len(), 3);
//! assert_eq!(results[0].name, "sweep-0");
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One named unit of work for the [`WorkloadRunner`] — typically a whole
/// conversion pipeline run, but any `FnOnce` closure works (the closure
/// may borrow from the caller's stack).
pub struct Workload<'a, R> {
    name: String,
    job: Box<dyn FnOnce() -> R + Send + 'a>,
}

impl<'a, R> Workload<'a, R> {
    pub fn new(name: impl Into<String>, job: impl FnOnce() -> R + Send + 'a) -> Self {
        Workload {
            name: name.into(),
            job: Box::new(job),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The outcome of one workload: its name, its return value, and the wall
/// clock it held an admission slot (queueing time excluded).
#[derive(Debug, Clone)]
pub struct WorkloadResult<R> {
    pub name: String,
    pub value: R,
    pub seconds: f64,
}

/// Runs batches of [`Workload`]s concurrently over a shared thread
/// budget. See the module docs for the scheduling and determinism
/// contract.
pub struct WorkloadRunner {
    budget: usize,
}

impl WorkloadRunner {
    /// A runner admitting at most `budget` concurrent workloads
    /// (0 = all available cores). The inner parallel stages of admitted
    /// workloads all share the persistent worker pool, so raising the
    /// budget never multiplies compute threads.
    pub fn new(budget: usize) -> Self {
        WorkloadRunner {
            budget: metis_nn::par::resolve_threads(budget).max(1),
        }
    }

    /// Concurrent workload slots.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Run every workload and return their results **in submission
    /// order**. Each workload executes exactly as it would alone —
    /// bit-identical results — while sharing the pool fairly with its
    /// neighbours. Panics if a workload panics (after the others finish).
    ///
    /// Only `min(budget, workloads)` driver threads are spawned; they
    /// pull workloads from a shared queue in submission order, so
    /// admission is genuinely FIFO and a thousand-point sweep never
    /// creates a thousand OS threads.
    pub fn run<R: Send>(&self, workloads: Vec<Workload<'_, R>>) -> Vec<WorkloadResult<R>> {
        let n = workloads.len();
        let drivers = self.budget.min(n).max(1);
        // Submission-ordered FIFO of (slot index, workload); each result
        // lands in its submission slot regardless of which driver ran it.
        let queue: Mutex<VecDeque<(usize, Workload<'_, R>)>> =
            Mutex::new(workloads.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<WorkloadResult<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..drivers)
                .map(|_| {
                    let queue = &queue;
                    let slots = &slots;
                    scope.spawn(move || loop {
                        let Some((idx, workload)) = queue.lock().unwrap().pop_front() else {
                            return;
                        };
                        let group = metis_nn::par::fresh_group();
                        let result = metis_nn::par::with_group(group, || {
                            let start = Instant::now();
                            let value = (workload.job)();
                            WorkloadResult {
                                name: workload.name,
                                value,
                                seconds: start.elapsed().as_secs_f64(),
                            }
                        });
                        *slots[idx].lock().unwrap() = Some(result);
                    })
                })
                .collect();
            let mut panicked = false;
            for handle in handles {
                panicked |= handle.join().is_err();
            }
            assert!(!panicked, "workload panicked");
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every submitted workload produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConversionConfig;
    use crate::pipeline::ConversionPipeline;
    use metis_rl::env::test_envs::BanditEnv;
    use metis_rl::Policy;

    #[derive(Clone)]
    struct Oracle;
    impl Policy for Oracle {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            p[obs.iter().position(|&x| x == 1.0).unwrap()] = 1.0;
            p
        }
    }

    #[test]
    fn results_return_in_submission_order() {
        let results = WorkloadRunner::new(2).run(
            (0..5)
                .map(|k| Workload::new(format!("w{k}"), move || k * k))
                .collect(),
        );
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["w0", "w1", "w2", "w3", "w4"]);
        let values: Vec<usize> = results.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![0, 1, 4, 9, 16]);
        assert!(results.iter().all(|r| r.seconds >= 0.0));
    }

    #[test]
    fn budget_zero_resolves_to_cores() {
        assert!(WorkloadRunner::new(0).budget() >= 1);
        assert_eq!(WorkloadRunner::new(3).budget(), 3);
    }

    #[test]
    fn budget_bounds_concurrent_admissions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        WorkloadRunner::new(2).run(
            (0..8)
                .map(|k| {
                    let active = &active;
                    let peak = &peak;
                    Workload::new(format!("w{k}"), move || {
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        active.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
    }

    /// The acceptance bar: concurrent scenario pipelines over a shared
    /// budget are bit-identical to running each pipeline alone, for any
    /// thread knob.
    #[test]
    fn concurrent_pipelines_bit_identical_to_solo_runs() {
        let pool: Vec<BanditEnv> = (0..4).map(|s| BanditEnv::new(3, 20, s)).collect();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 6,
            max_steps: 16,
            ..Default::default()
        };
        let run_one = |seed: u64, threads: usize| {
            ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
                .conversion(cfg.clone())
                .seed(seed)
                .threads(threads)
                .run()
        };
        for threads in [1usize, 3] {
            let solo: Vec<_> = (0..3).map(|seed| run_one(seed, threads)).collect();
            let sharded = WorkloadRunner::new(0).run(
                (0..3)
                    .map(|seed| {
                        let run_one = &run_one;
                        Workload::new(format!("bandit-{seed}"), move || run_one(seed, threads))
                    })
                    .collect(),
            );
            for (alone, shared) in solo.iter().zip(sharded.iter()) {
                assert_eq!(alone.policy.tree, shared.value.policy.tree);
                assert_eq!(alone.fidelity_history, shared.value.fidelity_history);
                assert_eq!(alone.dataset_size, shared.value.dataset_size);
            }
        }
    }
}
