//! # metis-core — the Metis framework (SIGCOMM 2020)
//!
//! *"Interpreting Deep Learning-Based Networking Systems"*, Meng et al.
//! Metis interprets **local** systems (Pensieve, AuTO) by converting their
//! DNN policies into decision trees, and **global** systems (RouteNet*) by
//! formulating them as hypergraphs and searching for critical connections.
//!
//! * [`pipeline`] — the unified, parallel §3.2 conversion engine
//!   ([`pipeline::ConversionPipeline`]) driving every scenario through
//!   one code path: DAgger collection rounds, Eq.-1 advantage resampling,
//!   CART fitting, CCP pruning, and fidelity/return evaluation,
//! * [`convert`] — conversion config/result types, the deployable
//!   [`convert::TreePolicy`], the §6.3 oversampling debug interface, and
//!   the multi-output regression student for sRLA,
//! * [`interpret`] — the §4 hypergraph interpretation of RouteNet*:
//!   formulation, masked-GNN critical-connection search, Table-3
//!   classification, Figure-9 statistics, Figure-18 ad-hoc rerouting,
//! * [`formulate`] — the Appendix-B scenario formulations (NFV placement,
//!   ultra-dense cellular, cluster scheduling),
//! * [`baselines`] — LIME and LEMNA (Appendix E) over k-means clusters,
//! * [`deploy`] — artifact/latency cost model (§6.4),
//! * [`workload`] — cross-workload sharding: many pipelines concurrently
//!   over one shared thread budget ([`workload::WorkloadRunner`]),
//! * [`serving`] — serve-while-converting: live `metis_serve` traffic and
//!   a conversion pipeline over one budget, with per-round hot swaps —
//!   plus the `metis_fabric`-backed variant that routes traffic through
//!   session-affine shards and shadow-audits each round's student before
//!   it goes live,
//! * [`config`] — Table-4 defaults,
//! * [`stats`] — experiment statistics helpers.

pub mod baselines;
pub mod config;
pub mod convert;
pub mod deploy;
pub mod formulate;
pub mod interpret;
pub mod pipeline;
pub mod serving;
pub mod stats;
pub mod workload;

pub use config::MetisDefaults;
pub use convert::{
    convert_policy, oversample_rare_actions, ConversionConfig, ConversionResult, MultiRegressor,
    TreePolicy,
};
pub use deploy::{measure_latency, ArtifactCost, DeployError, LatencyStats};
pub use interpret::{
    adhoc_points, classify_connection, interpret_policy_features, interpret_routing,
    mask_mass_per_link, routing_hypergraph, AdhocPoint, ConnectionReport, FeatureReport,
    InterpretationKind, MaskedRouting,
};
pub use pipeline::{ConversionPipeline, PipelineStats};
pub use serving::{
    serve_fabric_ensemble_while_converting, serve_fabric_while_converting, serve_while_converting,
    FabricServeOutcome, ServeWhileConvertOutcome, FABRIC_STUDENT_KEY,
};
pub use stats::{ecdf, mean, pearson, quadrant13_fraction, std_dev};
pub use workload::{RunnerStats, Workload, WorkloadResult, WorkloadRunner};
