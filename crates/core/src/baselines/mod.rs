//! The Appendix-E interpretation baselines Metis is compared against:
//! **LIME** (per-cluster linear surrogates) and **LEMNA** (per-cluster
//! mixture-of-linear-regressions fitted by EM), plus the k-means
//! clustering both are wrapped in and the shared ridge solver.

pub mod kmeans;
pub mod lemna;
pub mod lime;
pub mod linreg;

pub use kmeans::{kmeans, KMeans};
pub use lemna::Lemna;
pub use lime::Lime;
pub use linreg::{fit_ridge, LinearModel};

/// A surrogate interpretation model fitted to (state, teacher-output)
/// pairs. Outputs are vectors: action logits/probabilities for
/// classification teachers, raw values for regression teachers.
pub trait Surrogate {
    /// Predicted output vector for a state.
    fn predict(&self, x: &[f64]) -> Vec<f64>;

    /// Predicted class (argmax of the output vector).
    fn predict_class(&self, x: &[f64]) -> usize {
        metis_nn::argmax(&self.predict(x))
    }
}

/// Agreement between a surrogate's argmax and teacher labels.
pub fn surrogate_accuracy<S: Surrogate + ?Sized>(s: &S, x: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(x.len(), labels.len());
    if x.is_empty() {
        return 0.0;
    }
    x.iter()
        .zip(labels.iter())
        .filter(|(xi, &y)| s.predict_class(xi) == y)
        .count() as f64
        / x.len() as f64
}

/// Root-mean-square error between surrogate outputs and teacher outputs.
pub fn surrogate_rmse<S: Surrogate + ?Sized>(s: &S, x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut count = 0usize;
    for (xi, yi) in x.iter().zip(y.iter()) {
        let p = s.predict(xi);
        for (pk, yk) in p.iter().zip(yi.iter()) {
            acc += (pk - yk) * (pk - yk);
            count += 1;
        }
    }
    (acc / count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Surrogate for Echo {
        fn predict(&self, x: &[f64]) -> Vec<f64> {
            x.to_vec()
        }
    }

    #[test]
    fn accuracy_and_rmse_of_echo() {
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let labels = vec![0, 1];
        assert_eq!(surrogate_accuracy(&Echo, &x, &labels), 1.0);
        assert_eq!(surrogate_rmse(&Echo, &x, &x.clone()), 0.0);
        let y_off = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
        let rmse = surrogate_rmse(&Echo, &x, &y_off);
        assert!((rmse - (0.5_f64).sqrt()).abs() < 1e-12);
    }
}
