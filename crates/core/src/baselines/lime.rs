//! LIME [63] adapted as in the paper's Appendix E: samples are grouped
//! with k-means and each cluster gets its own (ridge) linear surrogate of
//! the teacher's outputs; queries are answered by the surrogate of the
//! nearest centroid.

use super::kmeans::{kmeans, KMeans};
use super::linreg::{fit_ridge, LinearModel};
use super::Surrogate;
use rand::rngs::StdRng;

/// Per-cluster linear surrogate.
pub struct Lime {
    clusters: KMeans,
    models: Vec<LinearModel>,
    fallback: LinearModel,
}

impl Lime {
    /// Fit with `k` clusters on (state, teacher-output) pairs.
    pub fn fit(x: &[Vec<f64>], y: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "Lime::fit: bad data");
        let clusters = kmeans(x, k, 50, rng);
        let fallback =
            fit_ridge(x, y, None, 1e-3).expect("global ridge fit cannot fail with ridge > 0");
        let k_eff = clusters.centroids.len();
        let mut models = Vec::with_capacity(k_eff);
        for c in 0..k_eff {
            let idx: Vec<usize> = (0..x.len())
                .filter(|&i| clusters.assignments[i] == c)
                .collect();
            let cx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
            let cy: Vec<Vec<f64>> = idx.iter().map(|&i| y[i].clone()).collect();
            let model = if cx.len() >= 2 {
                fit_ridge(&cx, &cy, None, 1e-3).unwrap_or_else(|| fallback.clone())
            } else {
                fallback.clone()
            };
            models.push(model);
        }
        Lime {
            clusters,
            models,
            fallback,
        }
    }

    /// Linear coefficients for the cluster containing `x` — LIME's actual
    /// "interpretation" (which inputs matter locally).
    pub fn local_coefficients(&self, x: &[f64]) -> &LinearModel {
        self.models
            .get(self.clusters.assign(x))
            .unwrap_or(&self.fallback)
    }
}

impl Surrogate for Lime {
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.local_coefficients(x).predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{surrogate_accuracy, surrogate_rmse};
    use rand::SeedableRng;

    /// Piecewise-linear teacher: two regimes split at x0 = 5.
    fn teacher(x: &[f64]) -> Vec<f64> {
        if x[0] < 5.0 {
            vec![2.0 * x[0], 1.0]
        } else {
            vec![-x[0] + 20.0, 3.0]
        }
    }

    fn data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y = x.iter().map(|xi| teacher(xi)).collect();
        (x, y)
    }

    #[test]
    fn more_clusters_fit_piecewise_teacher_better() {
        let (x, y) = data();
        let mut rng = StdRng::seed_from_u64(4);
        let lime1 = Lime::fit(&x, &y, 1, &mut rng);
        let lime4 = Lime::fit(&x, &y, 4, &mut rng);
        let rmse1 = surrogate_rmse(&lime1, &x, &y);
        let rmse4 = surrogate_rmse(&lime4, &x, &y);
        assert!(
            rmse4 < rmse1,
            "4 clusters ({rmse4}) should beat 1 cluster ({rmse1})"
        );
        // Each regime is exactly linear, so 4 clusters fit it tightly.
        assert!(rmse4 < 0.5, "rmse4 = {rmse4}");
    }

    #[test]
    fn classification_accuracy_on_linear_teacher() {
        // Labels = argmax of a linear function: LIME should track it.
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 30.0 - 1.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|xi| vec![xi[0], -xi[0]]).collect();
        let labels: Vec<usize> = y.iter().map(|yi| metis_nn::argmax(yi)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let lime = Lime::fit(&x, &y, 2, &mut rng);
        let acc = surrogate_accuracy(&lime, &x, &labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn local_coefficients_expose_slopes() {
        let (x, y) = data();
        let mut rng = StdRng::seed_from_u64(9);
        let lime = Lime::fit(&x, &y, 2, &mut rng);
        let low = lime.local_coefficients(&[1.0]);
        // Low regime slope ≈ 2.
        assert!(
            (low.weights[0][0] - 2.0).abs() < 0.5,
            "slope {:?}",
            low.weights[0]
        );
    }
}
