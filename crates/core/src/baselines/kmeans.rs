//! k-means clustering (Lloyd's algorithm) — Appendix E groups samples into
//! k clusters before fitting the LIME/LEMNA local surrogates.

use rand::rngs::StdRng;
use rand::Rng;

/// k-means result.
#[derive(Debug, Clone)]
pub struct KMeans {
    pub centroids: Vec<Vec<f64>>,
    pub assignments: Vec<usize>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run Lloyd's algorithm with k-means++ initialization (Arthur &
/// Vassilvitskii 2007): each further centroid is drawn with probability
/// proportional to its squared distance from the nearest centroid so far,
/// which makes the clustering far less sensitive to the RNG stream than
/// plain random-sample seeding.
pub fn kmeans(x: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut StdRng) -> KMeans {
    assert!(!x.is_empty(), "kmeans on empty data");
    let k = k.max(1).min(x.len());
    let mut centroids = Vec::with_capacity(k);
    centroids.push(x[rng.gen_range(0..x.len())].clone());
    let mut d2: Vec<f64> = x.iter().map(|xi| sq_dist(xi, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining mass at existing centroids: any point works.
            rng.gen_range(0..x.len())
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut pick = x.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                u -= d;
                if u <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.push(x[next].clone());
        for (di, xi) in d2.iter_mut().zip(x.iter()) {
            *di = di.min(sq_dist(xi, centroids.last().unwrap()));
        }
    }
    let mut assignments = vec![0usize; x.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, xi) in x.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(xi, &centroids[a])
                        .partial_cmp(&sq_dist(xi, &centroids[b]))
                        .unwrap()
                })
                .unwrap();
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update (always, so centroids settle on the cluster means even
        // when the initial assignment was already optimal).
        let d = x[0].len();
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (i, xi) in x.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &v) in sums[assignments[i]].iter_mut().zip(xi.iter()) {
                *s += v;
            }
        }
        let mut moved = false;
        for c in 0..k {
            if counts[c] > 0 {
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                if new != centroids[c] {
                    moved = true;
                    centroids[c] = new;
                }
            }
        }
        if !changed && !moved {
            break;
        }
    }
    KMeans {
        centroids,
        assignments,
    }
}

impl KMeans {
    /// Nearest centroid of a query point.
    pub fn assign(&self, x: &[f64]) -> usize {
        (0..self.centroids.len())
            .min_by(|&a, &b| {
                sq_dist(x, &self.centroids[a])
                    .partial_cmp(&sq_dist(x, &self.centroids[b]))
                    .unwrap()
            })
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn separates_two_blobs() {
        let mut x = Vec::new();
        for i in 0..20 {
            x.push(vec![i as f64 * 0.01, 0.0]);
            x.push(vec![10.0 + i as f64 * 0.01, 0.0]);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let km = kmeans(&x, 2, 50, &mut rng);
        // Points in the same blob share a cluster.
        let c0 = km.assign(&[0.1, 0.0]);
        let c1 = km.assign(&[10.1, 0.0]);
        assert_ne!(c0, c1);
        for i in 0..20 {
            assert_eq!(km.assignments[2 * i], c0);
            assert_eq!(km.assignments[2 * i + 1], c1);
        }
    }

    #[test]
    fn k_clamped_to_sample_count() {
        let x = vec![vec![0.0], vec![1.0]];
        let mut rng = StdRng::seed_from_u64(1);
        let km = kmeans(&x, 10, 10, &mut rng);
        assert!(km.centroids.len() <= 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let x = vec![vec![0.0], vec![2.0], vec![4.0]];
        let mut rng = StdRng::seed_from_u64(2);
        let km = kmeans(&x, 1, 20, &mut rng);
        assert!((km.centroids[0][0] - 2.0).abs() < 1e-9);
    }
}
