//! LEMNA [30] adapted as in Appendix E: within each k-means cluster, a
//! mixture of linear regressions is fitted by EM (fused-lasso omitted —
//! the mixture is the piece that differentiates LEMNA from LIME on
//! sequence data). Prediction is the responsibility-weighted mixture mean.

use super::kmeans::{kmeans, KMeans};
use super::linreg::{fit_ridge, LinearModel};
use super::Surrogate;
use rand::rngs::StdRng;
use rand::Rng;

/// Mixture of linear regressions for one cluster.
struct Mixture {
    components: Vec<LinearModel>,
    priors: Vec<f64>,
    /// Residual variance per component (for responsibilities).
    variances: Vec<f64>,
}

impl Mixture {
    /// Best-of-restarts EM: random-responsibility initialization makes a
    /// single EM run sensitive to the RNG stream, so run a few restarts and
    /// keep the mixture with the lowest responsibility-weighted residual
    /// error (which can only improve on any single run).
    fn fit(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        n_components: usize,
        em_iters: usize,
        rng: &mut StdRng,
    ) -> Option<Self> {
        const RESTARTS: usize = 4;
        let mut best: Option<(f64, Mixture)> = None;
        for _ in 0..RESTARTS {
            if let Some(m) = Self::fit_once(x, y, n_components, em_iters, rng) {
                let err = m.mixture_error(x, y);
                if best.as_ref().is_none_or(|(be, _)| err < *be) {
                    best = Some((err, m));
                }
            }
        }
        best.map(|(_, m)| m)
    }

    /// Mean squared error of the mixture-mean prediction.
    fn mixture_error(&self, x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
        let mut acc = 0.0;
        for (xi, yi) in x.iter().zip(y.iter()) {
            let p = self.predict(xi);
            acc += p
                .iter()
                .zip(yi.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        acc / x.len().max(1) as f64
    }

    fn fit_once(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        n_components: usize,
        em_iters: usize,
        rng: &mut StdRng,
    ) -> Option<Self> {
        let n = x.len();
        if n < 2 {
            return None;
        }
        let k = n_components.min(n).max(1);
        // Init responsibilities randomly.
        let mut resp = vec![vec![0.0; k]; n];
        for r in resp.iter_mut() {
            let c = rng.gen_range(0..k);
            r[c] = 1.0;
        }
        let mut components: Vec<LinearModel> = Vec::new();
        let mut priors = vec![1.0 / k as f64; k];
        let mut variances = vec![1.0; k];
        for _ in 0..em_iters {
            // M-step: weighted ridge fit per component.
            components.clear();
            for c in 0..k {
                let w: Vec<f64> = resp.iter().map(|r| f64::max(r[c], 1e-6)).collect();
                let model = fit_ridge(x, y, Some(&w), 1e-3)?;
                // Weighted residual variance.
                let mut num = 0.0_f64;
                let mut den = 0.0_f64;
                for i in 0..n {
                    let p = model.predict(&x[i]);
                    let e: f64 = p
                        .iter()
                        .zip(y[i].iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    num += w[i] * e;
                    den += w[i];
                }
                variances[c] = (num / den.max(1e-12)).max(1e-6);
                priors[c] = den / n as f64;
                components.push(model);
            }
            let prior_sum: f64 = priors.iter().sum();
            for p in priors.iter_mut() {
                *p /= prior_sum;
            }
            // E-step: Gaussian responsibilities on residuals.
            for i in 0..n {
                let mut total = 0.0;
                let mut r = vec![0.0; k];
                for c in 0..k {
                    let p = components[c].predict(&x[i]);
                    let e: f64 = p
                        .iter()
                        .zip(y[i].iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    let like = priors[c] * (-e / (2.0 * variances[c])).exp()
                        / variances[c].sqrt().max(1e-9);
                    r[c] = like.max(1e-12);
                    total += r[c];
                }
                for c in 0..k {
                    resp[i][c] = r[c] / total;
                }
            }
        }
        Some(Mixture {
            components,
            priors,
            variances,
        })
    }

    fn predict(&self, x: &[f64]) -> Vec<f64> {
        // Prior-weighted mixture mean.
        let out_dim = self.components[0].bias.len();
        let mut out = vec![0.0; out_dim];
        for (c, model) in self.components.iter().enumerate() {
            let p = model.predict(x);
            for (o, v) in out.iter_mut().zip(p.iter()) {
                *o += self.priors[c] * v;
            }
        }
        out
    }
}

/// LEMNA: k-means clusters, each holding an EM-fitted mixture regression.
pub struct Lemna {
    clusters: KMeans,
    mixtures: Vec<Option<Mixture>>,
    fallback: LinearModel,
}

impl Lemna {
    /// Fit with `k` clusters and `n_components` mixture components each.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        k: usize,
        n_components: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "Lemna::fit: bad data");
        let clusters = kmeans(x, k, 50, rng);
        let fallback =
            fit_ridge(x, y, None, 1e-3).expect("global ridge fit cannot fail with ridge > 0");
        let k_eff = clusters.centroids.len();
        let mut mixtures = Vec::with_capacity(k_eff);
        for c in 0..k_eff {
            let idx: Vec<usize> = (0..x.len())
                .filter(|&i| clusters.assignments[i] == c)
                .collect();
            let cx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
            let cy: Vec<Vec<f64>> = idx.iter().map(|&i| y[i].clone()).collect();
            mixtures.push(Mixture::fit(&cx, &cy, n_components, 10, rng));
        }
        Lemna {
            clusters,
            mixtures,
            fallback,
        }
    }

    /// Residual variances of the mixture serving `x` (diagnostic; the
    /// paper notes LEMNA's EM can destabilize on concentrated states).
    pub fn local_variances(&self, x: &[f64]) -> Option<&[f64]> {
        self.mixtures[self.clusters.assign(x)]
            .as_ref()
            .map(|m| m.variances.as_slice())
    }
}

impl Surrogate for Lemna {
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        match &self.mixtures[self.clusters.assign(x)] {
            Some(m) => m.predict(x),
            None => self.fallback.predict(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::surrogate_rmse;
    use rand::SeedableRng;

    #[test]
    fn mixture_outperforms_single_line_on_two_regimes() {
        // Interleaved two-regime data inside ONE cluster: a single linear
        // model averages the regimes; a 2-component mixture tracks them.
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![(i / 2) as f64 / 10.0]).collect();
        let y: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let xi = (i / 2) as f64 / 10.0;
                if i % 2 == 0 {
                    vec![2.0 * xi + 3.0]
                } else {
                    vec![-2.0 * xi - 3.0]
                }
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let lemna = Lemna::fit(&x, &y, 1, 2, &mut rng);
        let single = crate::baselines::Lime::fit(&x, &y, 1, &mut rng);
        let rmse_mix = surrogate_rmse(&lemna, &x, &y);
        let rmse_lin = surrogate_rmse(&single, &x, &y);
        // The mixture mean with balanced priors also averages, but its
        // components must discover the two slopes: check the variance is
        // finite and the fit not worse than the single line.
        assert!(rmse_mix <= rmse_lin + 1e-6, "{rmse_mix} vs {rmse_lin}");
        assert!(lemna.local_variances(&[0.5]).is_some());
    }

    #[test]
    fn lemna_fits_plain_linear_data_well() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 4.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|xi| vec![3.0 * xi[0] - 1.0]).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let lemna = Lemna::fit(&x, &y, 2, 2, &mut rng);
        let rmse = surrogate_rmse(&lemna, &x, &y);
        assert!(rmse < 0.5, "rmse {rmse}");
    }

    #[test]
    fn degenerate_cluster_falls_back() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(2);
        // k = 2 makes singleton clusters -> mixture fit returns None.
        let lemna = Lemna::fit(&x, &y, 2, 2, &mut rng);
        let p = lemna.predict(&[0.0]);
        assert!(p[0].is_finite());
    }
}
