//! Ridge-regularized multi-output linear regression (normal equations +
//! Gaussian elimination) — the shared solver under LIME and LEMNA.

/// A fitted linear model `y = W x + b` (multi-output).
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// `weights[k]` is the coefficient row of output `k`.
    pub weights: Vec<Vec<f64>>,
    pub bias: Vec<f64>,
}

impl LinearModel {
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(self.bias.iter())
            .map(|(w, b)| b + w.iter().zip(x.iter()).map(|(wi, xi)| wi * xi).sum::<f64>())
            .collect()
    }
}

/// Solve `A Z = RHS` for all right-hand-side columns at once (Gaussian
/// elimination with partial pivoting; one factorization amortized over
/// every output dimension). Returns `None` for singular systems.
#[allow(clippy::needless_range_loop)] // in-place elimination over row pairs
fn solve_multi(mut a: Vec<Vec<f64>>, mut rhs: Vec<Vec<f64>>) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    for col in 0..n {
        // Pivot.
        let pivot =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        rhs.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            for k in 0..rhs[row].len() {
                let v = f * rhs[col][k];
                rhs[row][k] -= v;
            }
        }
    }
    // Back substitution, per RHS column.
    let out_dim = rhs[0].len();
    let mut z = vec![vec![0.0; out_dim]; n];
    for row in (0..n).rev() {
        for k in 0..out_dim {
            let mut acc = rhs[row][k];
            for j in row + 1..n {
                acc -= a[row][j] * z[j][k];
            }
            z[row][k] = acc / a[row][row];
        }
    }
    Some(z)
}

/// Weighted ridge regression: minimizes
/// `Σ_i w_i ‖y_i − (W x_i + b)‖² + ridge·‖W‖²`.
///
/// Returns `None` only if the normal equations are singular even with the
/// ridge term (e.g. zero samples).
#[allow(clippy::needless_range_loop)] // normal-equation assembly is index-coupled
pub fn fit_ridge(
    x: &[Vec<f64>],
    y: &[Vec<f64>],
    sample_weights: Option<&[f64]>,
    ridge: f64,
) -> Option<LinearModel> {
    if x.is_empty() || x.len() != y.len() {
        return None;
    }
    let d = x[0].len();
    let out_dim = y[0].len();
    let aug = d + 1; // bias column
                     // Normal matrix: X^T diag(w) X + ridge I  (bias unregularized).
    let mut xtx = vec![vec![0.0; aug]; aug];
    let mut xty = vec![vec![0.0; out_dim]; aug];
    for (i, xi) in x.iter().enumerate() {
        let w = sample_weights.map_or(1.0, |sw| sw[i]);
        let mut row = xi.clone();
        row.push(1.0);
        for a in 0..aug {
            for b in 0..aug {
                xtx[a][b] += w * row[a] * row[b];
            }
            for k in 0..out_dim {
                xty[a][k] += w * row[a] * y[i][k];
            }
        }
    }
    for a in 0..d {
        xtx[a][a] += ridge;
    }
    // One factorization for every output dimension.
    let z = solve_multi(xtx, xty)?;
    let mut weights = Vec::with_capacity(out_dim);
    let mut bias = Vec::with_capacity(out_dim);
    for k in 0..out_dim {
        weights.push((0..d).map(|a| z[a][k]).collect());
        bias.push(z[d][k]);
    }
    Some(LinearModel { weights, bias })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_of_linear_data() {
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|xi| vec![3.0 * xi[0] - 2.0 * xi[1] + 5.0])
            .collect();
        let m = fit_ridge(&x, &y, None, 1e-9).unwrap();
        assert!((m.weights[0][0] - 3.0).abs() < 1e-6);
        assert!((m.weights[0][1] + 2.0).abs() < 1e-6);
        assert!((m.bias[0] - 5.0).abs() < 1e-5);
        let p = m.predict(&[10.0, 3.0]);
        assert!((p[0] - (30.0 - 6.0 + 5.0)).abs() < 1e-5);
    }

    #[test]
    fn multi_output() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|xi| vec![2.0 * xi[0], -xi[0] + 1.0]).collect();
        let m = fit_ridge(&x, &y, None, 1e-9).unwrap();
        let p = m.predict(&[4.0]);
        assert!((p[0] - 8.0).abs() < 1e-6);
        assert!((p[1] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn sample_weights_bias_the_fit() {
        // Two clusters of contradictory data; weights pick the winner.
        let x = vec![vec![1.0], vec![1.0]];
        let y = vec![vec![0.0], vec![10.0]];
        let m = fit_ridge(&x, &y, Some(&[100.0, 1.0]), 1e-6).unwrap();
        let p = m.predict(&[1.0]);
        assert!(
            p[0] < 1.0,
            "weighted fit should track the heavy sample, got {}",
            p[0]
        );
    }

    #[test]
    fn ridge_handles_degenerate_features() {
        // Constant feature column would be singular without the ridge.
        let x = vec![vec![1.0, 5.0], vec![1.0, 5.0], vec![1.0, 5.0]];
        let y = vec![vec![2.0], vec![2.0], vec![2.0]];
        let m = fit_ridge(&x, &y, None, 1e-3).unwrap();
        assert!((m.predict(&[1.0, 5.0])[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(fit_ridge(&[], &[], None, 1.0).is_none());
    }
}
