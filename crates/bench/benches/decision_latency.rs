//! Criterion benches behind Figure 16(a): per-decision inference latency of
//! the paper-scale AuTO DNNs vs the Metis decision tree (plain and
//! compiled), plus the Pensieve actor for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use metis_abr::{PensieveArch, PensieveNet};
use metis_dt::{fit, CompiledTree, Criterion as SplitCriterion, Dataset, TreeConfig};
use metis_flowsched::{lrla_net_paper_scale, srla_net_paper_scale, LRLA_STATE_DIM, SRLA_STATE_DIM};
use metis_nn::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A synthetic 2000-leaf tree over the lRLA feature space (content does not
/// affect traversal cost; only depth/branching does).
fn make_tree(rng: &mut StdRng) -> metis_dt::DecisionTree {
    let n = 6000;
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..LRLA_STATE_DIM)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect()
        })
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 17.0 + xi[5] * 9.0 + xi[40] * 4.0) as usize) % 108)
        .collect();
    let ds = Dataset::classification(x, y, 108).unwrap();
    fit(
        &ds,
        &TreeConfig {
            max_leaf_nodes: 2000,
            criterion: SplitCriterion::Gini,
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_latency(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let srla = srla_net_paper_scale(&mut rng);
    let lrla = lrla_net_paper_scale(&mut rng);
    let pensieve = PensieveNet::new(PensieveArch::Original, metis_abr::OBS_DIM, 128, 6, &mut rng);
    let tree = make_tree(&mut rng);
    let compiled = CompiledTree::compile(&tree);

    let obs_s = vec![0.3; SRLA_STATE_DIM];
    let obs_l = vec![0.3; LRLA_STATE_DIM];
    let obs_p = vec![0.3; metis_abr::OBS_DIM];

    let mut group = c.benchmark_group("decision_latency");
    group.bench_function("srla_dnn_700x600x600x3", |b| {
        b.iter(|| black_box(srla.predict(black_box(&obs_s))))
    });
    group.bench_function("lrla_dnn_143x600x600x108", |b| {
        b.iter(|| black_box(lrla.predict(black_box(&obs_l))))
    });
    group.bench_function("pensieve_dnn_25x128x128x6", |b| {
        b.iter(|| black_box(pensieve.predict(black_box(&obs_p))))
    });
    group.bench_function("metis_tree_2000_leaves", |b| {
        b.iter(|| black_box(tree.predict_class(black_box(&obs_l))))
    });
    group.bench_function("metis_compiled_tree", |b| {
        b.iter(|| black_box(compiled.predict_class(black_box(&obs_l))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_latency
}
criterion_main!(benches);
