//! Online-serving benchmarks behind the `metis_serve` subsystem: batched
//! compiled-tree throughput vs the single-request arena walk, registry
//! read cost, and the micro-batching engine under open-loop load —
//! including a sustained-load hot-swap audit (zero drops, every response
//! bit-identical to its epoch's sequential oracle). Emits
//! `BENCH_serving.json` at the workspace root for the `bench_guard` CI
//! regression gate (only the compute-bound `per_sec` metrics are gated;
//! scheduling-sensitive engine/latency numbers are reported ungated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metis_bench::measure::{median, median_rate, Windows};
use metis_dt::{
    fit, prune_to_leaves, CompiledTree, Dataset, DecisionTree, Forest, Prediction, TreeConfig,
};
use metis_fabric::{FabricConfig, PromotePolicy, Router, ScenarioSpec, ShadowConfig, TenantSpec};
use metis_flowsched::LRLA_STATE_DIM;
use metis_serve::{
    drive_open_loop, ArrivalProcess, ModelRegistry, Response, ServeConfig, ServedModel, TreeServer,
};
use metis_telemetry::{LogSketch, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 3] = [1, 32, 256];

/// The shared bench fixture: a paper-scale serving tree, its compiled
/// form, and a fixed pool of request feature vectors (request `k` uses
/// `pool[k % len]`, so swap audits can regenerate any request's features
/// from its id alone). Built once — the 2000-leaf CART fit is seconds of
/// work and both criterion targets need the identical artifact.
struct Fixture {
    tree: DecisionTree,
    compiled: CompiledTree,
    pool: Vec<Vec<f64>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(23);
        // A 2000-leaf tree over the lRLA feature space (content does not
        // affect traversal cost; only depth/branching does).
        let n = 6000;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..LRLA_STATE_DIM)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            })
            .collect();
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[0] * 17.0 + xi[5] * 9.0 + xi[40] * 4.0) as usize) % 108)
            .collect();
        let ds = Dataset::classification(x, y, 108).unwrap();
        let tree = fit(
            &ds,
            &TreeConfig {
                max_leaf_nodes: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        let compiled = CompiledTree::compile(&tree);
        let pool = (0..1024)
            .map(|_| {
                (0..LRLA_STATE_DIM)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            })
            .collect();
        Fixture {
            tree,
            compiled,
            pool,
        }
    })
}

/// Median rate over this bench's historical window schedule (nine 100ms
/// windows, one warmup) through the shared [`metis_bench::measure`] loop.
fn rows_per_sec(rows_per_call: usize, f: impl FnMut()) -> f64 {
    median_rate(Windows::serving(), rows_per_call, f)
}

fn bench_backend(c: &mut Criterion) {
    let Fixture {
        tree,
        compiled,
        pool,
    } = fixture();

    let mut group = c.benchmark_group("serving_backend");
    group.bench_function("tree_single", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % pool.len();
            black_box(tree.predict(black_box(&pool[k])))
        })
    });
    group.bench_function("compiled_single", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % pool.len();
            black_box(compiled.predict(black_box(&pool[k])))
        })
    });
    for batch in BATCH_SIZES {
        let flat: Vec<f64> = pool.iter().take(batch).flatten().copied().collect();
        group.bench_with_input(BenchmarkId::new("batched", batch), &flat, |b, flat| {
            b.iter(|| black_box(compiled.predict_batch(black_box(flat))))
        });
    }
    group.finish();
}

/// Outcome of one open-loop engine run plus its response audit.
struct EngineRun {
    served: usize,
    wall_s: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_batch: f64,
    mismatches: usize,
}

fn audit(responses: &[Response], sources: &[DecisionTree], pool: &[Vec<f64>]) -> usize {
    responses
        .iter()
        .filter(|r| {
            let oracle = sources[r.epoch as usize].predict(&pool[r.id as usize % pool.len()]);
            match (r.prediction, oracle) {
                (Prediction::Class(a), Prediction::Class(b)) => a != b,
                (Prediction::Value(a), Prediction::Value(b)) => a.to_bits() != b.to_bits(),
                _ => true,
            }
        })
        .count()
}

fn run_engine(
    sources: &[DecisionTree],
    pool: &[Vec<f64>],
    arrivals: &ArrivalProcess,
    time_scale: f64,
    publish_mid_run: bool,
) -> (EngineRun, u64, f64) {
    let registry = Arc::new(ModelRegistry::new(sources[0].clone()));
    let server = TreeServer::start(
        Arc::clone(&registry),
        ServeConfig {
            max_batch: 256,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    );
    let mut handle = server.handle();
    let start = Instant::now();
    let mut publish_max_us = 0.0f64;
    let (responses, swaps) = std::thread::scope(|scope| {
        let publisher = publish_mid_run.then(|| {
            let registry = Arc::clone(&registry);
            let trees = &sources[1..];
            scope.spawn(move || {
                let mut max_us = 0.0f64;
                for tree in trees {
                    std::thread::sleep(Duration::from_millis(15));
                    let t0 = Instant::now();
                    registry.publish(tree.clone());
                    max_us = max_us.max(t0.elapsed().as_secs_f64() * 1e6);
                }
                max_us
            })
        });
        let responses = drive_open_loop(
            &mut handle,
            arrivals,
            |k| pool[k as usize % pool.len()].clone(),
            time_scale,
        );
        if let Some(p) = publisher {
            publish_max_us = p.join().expect("publisher panicked");
        }
        (responses, registry.swap_count())
    });
    let wall_s = start.elapsed().as_secs_f64();
    let report = server.shutdown();
    // Same percentile convention as the engine's own report: the shared
    // metis_serve::summarize, not a local re-implementation.
    let summary =
        metis_serve::summarize(&responses.iter().map(|r| r.latency_s).collect::<Vec<f64>>());
    let run = EngineRun {
        served: responses.len(),
        wall_s,
        p50_us: summary.p50_s * 1e6,
        p99_us: summary.p99_s * 1e6,
        max_us: summary.max_s * 1e6,
        mean_batch: report.mean_batch,
        mismatches: audit(&responses, sources, pool),
    };
    assert_eq!(report.delivery_failures, 0, "responses went undelivered");
    (run, swaps, publish_max_us)
}

/// Engine-level ensemble serving A/B: a k-tree majority-vote forest
/// behind **one** `TreeServer` (each flush walks all members block-major
/// over one micro-batch) vs the one-at-a-time shape it replaces — k
/// single-tree servers all fed the same requests, majority vote on the
/// client. Both sides do k tree-walks per request and drain a full burst;
/// the returned rates are requests/s (median of `runs`). Every run
/// cross-checks a response sample bit-exactly against the offline
/// [`Forest`] oracle.
fn forest_serve_rates(
    members: &[DecisionTree],
    pool: &[Vec<f64>],
    requests: usize,
    runs: usize,
) -> (f64, f64) {
    let k = members.len();
    let oracle = Forest::from_trees(members).expect("ensemble members share the serving schema");
    let n_classes = 108;
    let cfg = ServeConfig {
        max_batch: 256,
        max_delay: Duration::from_micros(200),
        ..Default::default()
    };
    let ensemble_rates: Vec<f64> = (0..runs)
        .map(|_| {
            let model = ServedModel::from_trees(members.to_vec()).expect("coherent ensemble");
            let server = TreeServer::start(Arc::new(ModelRegistry::new_model(model)), cfg.clone());
            let mut handle = server.handle();
            let start = Instant::now();
            for r in 0..requests {
                handle.submit(pool[r % pool.len()].clone());
            }
            let responses = handle.collect();
            let rate = requests as f64 / start.elapsed().as_secs_f64();
            assert_eq!(
                responses.len(),
                requests,
                "ensemble engine dropped requests"
            );
            for resp in responses.iter().step_by(97) {
                let want = oracle.predict(&pool[resp.id as usize % pool.len()]);
                assert_eq!(
                    resp.prediction, want,
                    "served ensemble vote diverged from the offline forest"
                );
            }
            server.shutdown();
            rate
        })
        .collect();
    let naive_rates: Vec<f64> = (0..runs)
        .map(|_| {
            let servers: Vec<TreeServer> = members
                .iter()
                .map(|t| TreeServer::start(Arc::new(ModelRegistry::new(t.clone())), cfg.clone()))
                .collect();
            let mut handles: Vec<_> = servers.iter().map(|s| s.handle()).collect();
            let start = Instant::now();
            for r in 0..requests {
                for handle in handles.iter_mut() {
                    handle.submit(pool[r % pool.len()].clone());
                }
            }
            // `collect` sorts by id, so index r is request r on every lane.
            let lanes: Vec<Vec<Response>> = handles.iter_mut().map(|h| h.collect()).collect();
            let mut votes = vec![0u32; n_classes];
            let mut voted = Vec::with_capacity(requests);
            for r in 0..requests {
                votes.fill(0);
                for lane in &lanes {
                    votes[lane[r].prediction.class()] += 1;
                }
                let best = votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .unwrap()
                    .0;
                voted.push(Prediction::Class(best));
            }
            let rate = requests as f64 / start.elapsed().as_secs_f64();
            black_box(&voted);
            for lane in &lanes {
                assert_eq!(lane.len(), requests, "a member server dropped requests");
            }
            for r in (0..requests).step_by(97) {
                assert_eq!(
                    voted[r],
                    oracle.predict(&pool[r % pool.len()]),
                    "client-side vote diverged from the offline forest"
                );
            }
            drop(handles);
            for server in servers {
                server.shutdown();
            }
            rate
        })
        .collect();
    assert_eq!(k, oracle.n_trees());
    (median(ensemble_rates), median(naive_rates))
}

fn fabric_cfg() -> FabricConfig {
    FabricConfig {
        serve: ServeConfig {
            max_batch: 256,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
        mirror_batch: 0,
        ..Default::default()
    }
}

/// One burst-saturated fabric run: `scenarios` models behind one router,
/// each split into `shards` session-affine micro-batchers, everything
/// submitted at once (the queue drain rate with full batches). Returns
/// requests/s.
/// Cumulative CPU seconds this process has consumed across all live
/// threads, summed from `/proc/self/task/*/schedstat` (field 0 =
/// nanoseconds actually executed). CPU time is immune to the
/// descheduling noise a shared host injects into wall-clock rates —
/// blocked threads stop accruing — which makes it the right clock for
/// small *relative* costs like the telemetry plane's overhead, and
/// schedstat's ns resolution (vs the 10 ms ticks of `/proc/self/stat`)
/// resolves sub-percent deltas over sub-second regions. Falls back to
/// wall time when `/proc` is unavailable (non-Linux dev box).
fn process_cpu_s() -> f64 {
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        let mut total_ns = 0.0f64;
        let mut seen = false;
        for entry in tasks.flatten() {
            if let Ok(s) = std::fs::read_to_string(entry.path().join("schedstat")) {
                if let Some(Ok(ns)) = s.split_whitespace().next().map(|f| f.parse::<f64>()) {
                    total_ns += ns;
                    seen = true;
                }
            }
        }
        if seen {
            return total_ns * 1e-9;
        }
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// One burst through the fabric: returns `(requests/s, cpu_s)` where
/// `cpu_s` is the process CPU consumed inside the submit→collect
/// region only (setup/compile/teardown excluded).
fn fabric_burst_once(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    scenarios: usize,
    shards: usize,
    requests: usize,
    telemetry: Telemetry,
) -> (f64, f64) {
    let router = Router::new(
        vec![TenantSpec::new("bench")],
        (0..scenarios)
            .map(|i| ScenarioSpec::new(format!("s{i}"), "bench", tree.clone()).shards(shards))
            .collect(),
        FabricConfig {
            telemetry,
            ..fabric_cfg()
        },
    );
    let mut handle = router.handle();
    let cpu_start = process_cpu_s();
    let start = Instant::now();
    for k in 0..requests {
        handle.submit(
            k % scenarios,
            (k % 101) as u64,
            pool[k % pool.len()].clone(),
        );
    }
    let responses = handle.collect();
    let rate = requests as f64 / start.elapsed().as_secs_f64();
    let cpu_s = process_cpu_s() - cpu_start;
    assert_eq!(responses.len(), requests);
    drop(handle);
    let report = router.shutdown();
    assert_eq!(report.served, requests as u64, "fabric dropped requests");
    (rate, cpu_s)
}

/// Median burst throughput (requests/s) of one fabric shape with the
/// telemetry plane off — the fabric counterpart of `engine_capacity_rps`.
fn fabric_burst_rps(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    scenarios: usize,
    shards: usize,
    requests: usize,
    runs: usize,
) -> f64 {
    let rates: Vec<f64> = (0..runs)
        .map(|_| fabric_burst_once(tree, pool, scenarios, shards, requests, Telemetry::off()).0)
        .collect();
    median(rates)
}

/// Telemetry-plane A/B on the burst-saturated 1-shard fabric: identical
/// runs with the plane enabled vs disabled, interleaved pair by pair so
/// host drift lands on both sides equally. Returns
/// `(enabled_rps, disabled_rps, overhead_pct)`. The rps figures are
/// wall-clock medians (informational); the gated overhead compares the
/// **minimum process CPU time** each side achieved across its runs —
/// on a shared/virtualized host, wall-clock rates swing ±50% with OS
/// scheduling of the submit vs batcher thread and even CPU time is
/// inflated unpredictably by steal, but the fastest run of each side
/// approaches the interference-free cost, which is exactly what the
/// plane adds to. Clamped at 0: an enabled side measuring *cheaper* is
/// residual noise, not a negative cost. Every enabled run also audits
/// the plane itself: one scope per shard plus the control scope, and
/// the scoped served counters must cover every request.
fn telemetry_overhead(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    requests: usize,
    pairs: usize,
) -> (f64, f64, f64) {
    let (mut on_rates, mut off_rates) = (Vec::new(), Vec::new());
    let (mut on_cpu, mut off_cpu) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..pairs {
        let (off, off_c) = fabric_burst_once(tree, pool, 1, 1, requests, Telemetry::off());
        let plane = Telemetry::enabled();
        let (on, on_c) = fabric_burst_once(tree, pool, 1, 1, requests, plane.clone());
        let scopes = plane.scopes();
        assert_eq!(scopes.len(), 2, "1 shard + 1 control scope");
        let served: u64 = scopes.iter().map(|s| s.served.get()).sum();
        assert_eq!(served, requests as u64, "telemetry lost requests");
        off_rates.push(off);
        on_rates.push(on);
        off_cpu = off_cpu.min(off_c);
        on_cpu = on_cpu.min(on_c);
    }
    let overhead_pct = ((on_cpu - off_cpu) / off_cpu.max(1e-12) * 100.0).max(0.0);
    (median(on_rates), median(off_rates), overhead_pct)
}

/// One burst through a telemetry-enabled 1-shard fabric, optionally with
/// a live health observer scraping it from a side thread (ticking every
/// ~5 ms — three orders of magnitude harder than a real scraper's
/// 10–15 s cadence, while keeping the measured figure about per-tick
/// cost rather than a pathological tick *rate*). Returns
/// `(requests/s, cpu_s)`; the scraper thread's CPU is inside the
/// measured region, so the cost of snapshotting sketches, updating
/// rings, and evaluating burn/drift monitors all lands on the observed
/// side.
fn obs_burst_once(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    requests: usize,
    observe: bool,
) -> (f64, f64) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let plane = Telemetry::enabled();
    let router = Router::new(
        vec![TenantSpec {
            name: "bench".into(),
            deadline_class: 0,
            // A finite budget the burst actually brushes against, so the
            // burn monitors do real window arithmetic instead of
            // short-circuiting on infinity.
            p99_budget_s: 1e-3,
        }],
        vec![ScenarioSpec::new("s0", "bench", tree.clone())],
        FabricConfig {
            telemetry: plane,
            ..fabric_cfg()
        },
    );
    let observer = observe.then(|| {
        Arc::new(router.observer(metis_obs::ObserverConfig {
            tick_s: 5e-3,
            ..Default::default()
        }))
    });
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = observer.as_ref().map(|obs| {
        let obs = Arc::clone(obs);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                obs.tick_now();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    });
    let mut handle = router.handle();
    let cpu_start = process_cpu_s();
    let start = Instant::now();
    for k in 0..requests {
        handle.submit(0, (k % 101) as u64, pool[k % pool.len()].clone());
    }
    let responses = handle.collect();
    let rate = requests as f64 / start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(t) = scraper {
        t.join().expect("scraper thread");
    }
    let cpu_s = process_cpu_s() - cpu_start;
    assert_eq!(responses.len(), requests);
    if let Some(obs) = &observer {
        // A final tick so the report covers the burst's tail, then audit
        // the health plane end to end: it observed real traffic.
        obs.tick_now();
        let health = obs.health_report();
        assert!(health.ticks > 0, "scraper never ticked");
        let served: u64 = health.tenants.iter().map(|t| t.served_total).sum();
        assert_eq!(served, requests as u64, "observer missed traffic");
    }
    drop(handle);
    let report = router.shutdown();
    assert_eq!(report.served, requests as u64, "fabric dropped requests");
    (rate, cpu_s)
}

/// Health-observer A/B on the telemetry-enabled burst fabric: identical
/// runs with and without a live observer + scraper thread, interleaved
/// pair by pair. Same minimum-CPU discipline as [`telemetry_overhead`]
/// (wall rates are informational; the gated figure compares each side's
/// interference-free floor). Returns `(observed_rps, overhead_pct)` —
/// the marginal cost of the health plane *on top of* the telemetry
/// plane, gated by bench_guard's absolute `overhead_pct` ceiling.
fn obs_overhead(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    requests: usize,
    pairs: usize,
) -> (f64, f64) {
    let mut on_rates = Vec::new();
    let (mut on_cpu, mut off_cpu) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..pairs {
        let (_, off_c) = obs_burst_once(tree, pool, requests, false);
        let (on, on_c) = obs_burst_once(tree, pool, requests, true);
        on_rates.push(on);
        off_cpu = off_cpu.min(off_c);
        on_cpu = on_cpu.min(on_c);
    }
    let overhead_pct = ((on_cpu - off_cpu) / off_cpu.max(1e-12) * 100.0).max(0.0);
    (median(on_rates), overhead_pct)
}

/// Two tenants in different deadline classes flooding the fabric from
/// separate client threads: the per-tenant p99s out of the merged
/// `FabricReport` show how far the SLO scheduler's class ordering reaches
/// under contention. Flushes are forced onto the pool (`threads: 2`,
/// narrow stripes) so the deadline classes actually steer ticket order —
/// with `threads: 0` a 1-core host resolves to inline execution and the
/// class is inert. Median of `iterations` runs per tenant: a single p99
/// on a contended host is mostly OS-scheduler noise. (The *deterministic*
/// class-ordering proof is the pool's queue unit tests; this measurement
/// is the macro-level demonstration, honest about hardware limits.)
fn fabric_contention_p99_us(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    requests: usize,
    iterations: usize,
) -> (f64, f64) {
    let (mut urgent_runs, mut lax_runs) = (Vec::new(), Vec::new());
    for _ in 0..iterations {
        let router = Router::new(
            vec![
                TenantSpec {
                    name: "urgent".into(),
                    deadline_class: 0,
                    p99_budget_s: f64::INFINITY,
                },
                TenantSpec {
                    name: "lax".into(),
                    deadline_class: 4,
                    p99_budget_s: f64::INFINITY,
                },
            ],
            vec![
                ScenarioSpec::new("urgent-s", "urgent", tree.clone()),
                ScenarioSpec::new("lax-s", "lax", tree.clone()),
            ],
            FabricConfig {
                serve: ServeConfig {
                    max_batch: 256,
                    max_delay: Duration::from_micros(200),
                    threads: 2,
                    stripe_rows: 32,
                    ..Default::default()
                },
                mirror_batch: 0,
                ..Default::default()
            },
        );
        std::thread::scope(|scope| {
            for scenario in 0..2usize {
                let mut handle = router.handle();
                scope.spawn(move || {
                    for k in 0..requests {
                        handle.submit(scenario, (k % 53) as u64, pool[k % pool.len()].clone());
                    }
                    assert_eq!(handle.collect().len(), requests);
                });
            }
        });
        let report = router.shutdown();
        assert_eq!(report.served, 2 * requests as u64);
        let p99 = |name: &str| report.tenant(name).expect("tenant reported").latency.p99_s * 1e6;
        urgent_runs.push(p99("urgent"));
        lax_runs.push(p99("lax"));
    }
    (median(urgent_runs), median(lax_runs))
}

/// Shadow serving under sustained load: an identical candidate must
/// promote with a clean audit; a perturbed candidate must be rejected
/// with its mismatches on the record. Returns
/// `(mirrored_rows, mismatch_rows, promotions, rejected)`.
fn fabric_shadow_audit(
    tree: &DecisionTree,
    pool: &[Vec<f64>],
    requests: usize,
) -> (u64, u64, usize, u64) {
    let router = Router::new(
        vec![TenantSpec::new("bench")],
        vec![
            ScenarioSpec::new("s", "bench", tree.clone()).shadow(ShadowConfig {
                audit_rows: 2048,
                policy: PromotePolicy::OnZeroDiff,
            }),
        ],
        FabricConfig {
            mirror_batch: 64,
            ..fabric_cfg()
        },
    );
    let mut handle = router.handle();
    // Phase 1: a bit-identical refresh, audited on live traffic.
    router.stage("s", tree.clone());
    for k in 0..requests / 2 {
        handle.submit(0, (k % 97) as u64, pool[k % pool.len()].clone());
    }
    handle.collect();
    assert_eq!(
        router.registry("s").epoch(),
        1,
        "clean candidate must promote"
    );
    // Phase 2: a behaviourally different candidate must not go live.
    router.stage("s", prune_to_leaves(tree, 300));
    for k in 0..requests / 2 {
        handle.submit(0, (k % 97) as u64, pool[k % pool.len()].clone());
    }
    handle.collect();
    assert_eq!(
        router.registry("s").epoch(),
        1,
        "dirty candidate must be rejected"
    );
    drop(handle);
    let report = router.shutdown();
    let shadow = &report.scenarios[0].shadow;
    assert_eq!(shadow.promotions.len(), 1);
    assert_eq!(shadow.promotions[0].mismatches, 0);
    assert_eq!(shadow.rejected, 1);
    assert!(
        shadow.mismatch_rows > 0,
        "perturbed audit must surface diffs"
    );
    (
        shadow.mirrored_rows,
        shadow.mismatch_rows,
        shadow.promotions.len(),
        shadow.rejected,
    )
}

/// Measured summary for the JSON artifact consumed by the CI guard.
fn emit_report(_c: &mut Criterion) {
    let Fixture {
        tree,
        compiled,
        pool,
    } = fixture();

    // Backend throughput: the arena walk the seed deployed vs the
    // levelwise compiled batch walk the serving engine flushes.
    let tree_single_per_sec = rows_per_sec(pool.len(), || {
        for x in pool {
            black_box(tree.predict(black_box(x)));
        }
    });
    let compiled_single_per_sec = rows_per_sec(pool.len(), || {
        for x in pool {
            black_box(compiled.predict(black_box(x)));
        }
    });
    let batch_rates: Vec<f64> = BATCH_SIZES
        .iter()
        .map(|&batch| {
            let flat: Vec<f64> = pool.iter().take(batch).flatten().copied().collect();
            rows_per_sec(batch, || {
                black_box(compiled.predict_batch(black_box(&flat)));
            })
        })
        .collect();

    // The lane kernel in isolation: `predict_batch_into` with a
    // preallocated output buffer, so the number is the walk itself rather
    // than per-call result allocation. The retained pre-kernel levelwise
    // walk is measured back-to-back in the same process so the speedup
    // ratio is meaningful on a noisy host (absolute rates swing ±30%
    // round to round on this virtualized 1-core box; interleaved A/B
    // comparisons hold steady).
    let flat256: Vec<f64> = pool.iter().take(256).flatten().copied().collect();
    let mut out256 = vec![Prediction::Class(0); 256];
    let kernel_rows_per_sec_b256 = rows_per_sec(256, || {
        compiled.predict_batch_into(black_box(&flat256), black_box(&mut out256));
    });
    let levelwise_rows_x1_b256 = rows_per_sec(256, || {
        compiled.predict_batch_levelwise(black_box(&flat256), black_box(&mut out256));
    });
    let kernel_vs_levelwise_x_b256 = kernel_rows_per_sec_b256 / levelwise_rows_x1_b256.max(1e-12);

    // Forest evaluation, 8 trees over one schema: the block-major
    // evaluator (all trees walk one 16-row block before the batch
    // advances) vs the naive shape it replaces — the retained levelwise
    // walk once per tree, then the same majority-vote reduce. Both
    // report *rows* per second (each row costs 8 tree-walks either way).
    // Measured at 16384 rows (19 MB of features, past L2 and most of
    // L3): that is the regime ensemble amortization targets — the naive
    // shape re-streams the whole batch from cache/memory once per tree,
    // while block-major touches each 16-row block once and keeps it in
    // L1 across all 8 trees. Small batches fit in cache either way and
    // show only the reduced reduce/dispatch overhead (~1.6x at 256).
    let forest = Forest::from_compiled(
        std::iter::once(compiled.clone())
            .chain(
                [1750, 1500, 1250, 1000, 800, 600, 400]
                    .iter()
                    .map(|&l| CompiledTree::compile(&prune_to_leaves(tree, l))),
            )
            .collect(),
    )
    .expect("forest trees share the serving schema");
    assert_eq!(forest.n_trees(), 8);
    const FOREST_BATCH: usize = 16384;
    let forest_rows: Vec<f64> = (0..FOREST_BATCH)
        .flat_map(|k| pool[k % pool.len()].iter().copied())
        .collect();
    let mut forest_out = vec![Prediction::Class(0); FOREST_BATCH];
    let forest_rows_per_sec = rows_per_sec(FOREST_BATCH, || {
        forest.predict_batch_into(black_box(&forest_rows), black_box(&mut forest_out));
    });
    let mut naive_out = vec![Prediction::Class(0); FOREST_BATCH];
    let mut votes = vec![0u32; FOREST_BATCH * 108];
    let forest_naive_rows_per_sec = rows_per_sec(FOREST_BATCH, || {
        votes.fill(0);
        for t in forest.trees() {
            t.predict_batch_levelwise(black_box(&forest_rows), black_box(&mut naive_out));
            for (r, p) in naive_out.iter().enumerate() {
                votes[r * 108 + p.class()] += 1;
            }
        }
        for (r, slot) in naive_out.iter_mut().enumerate() {
            let row = &votes[r * 108..(r + 1) * 108];
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .unwrap()
                .0;
            *slot = Prediction::Class(best);
        }
        black_box(&naive_out);
    });
    let forest_vs_naive_x8 = forest_rows_per_sec / forest_naive_rows_per_sec.max(1e-12);
    // Cross-check while the fixtures are in hand: the block-major
    // evaluator and the naive per-tree reduce must agree row for row.
    {
        forest.predict_batch_into(&forest_rows, &mut forest_out);
        assert_eq!(forest_out, naive_out, "forest reduce diverged from naive");
    }

    // The in-register small-tree kernel: a 32-leaf prune (≤ 63 nodes,
    // within the 64-slot budget) whose compiled table carries the
    // register-resident threshold/feature/child lookups, vs the identical
    // tree with them stripped (the hardware-gather per-level loads it
    // replaces). Same rows, same process, back-to-back — the honest A/B
    // on a noisy host. On machines without AVX-512 both sides take the
    // same path and the ratio sits near 1x (warned, never gated: the
    // gather twin is `rows_x1`, invisible to the guard).
    let small_tree = prune_to_leaves(tree, 32);
    let small = CompiledTree::compile(&small_tree);
    assert!(
        small.node_count() <= metis_dt::INREG_NODES,
        "prune exceeded the in-register budget"
    );
    let small_gather = small.without_inreg();
    let mut small_out = vec![Prediction::Class(0); FOREST_BATCH];
    let kernel_inreg_rows_per_sec = rows_per_sec(FOREST_BATCH, || {
        small.predict_batch_into(black_box(&forest_rows), black_box(&mut small_out));
    });
    let mut gather_out = vec![Prediction::Class(0); FOREST_BATCH];
    let kernel_inreg_gather_rows_x1 = rows_per_sec(FOREST_BATCH, || {
        small_gather.predict_batch_into(black_box(&forest_rows), black_box(&mut gather_out));
    });
    let kernel_inreg_vs_gather_x =
        kernel_inreg_rows_per_sec / kernel_inreg_gather_rows_x1.max(1e-12);
    // Cross-check while the fixtures are in hand: the in-register walk,
    // the gather walk, and the sequential oracle must agree bit-exactly.
    {
        small.predict_batch_into(&forest_rows, &mut small_out);
        small_gather.predict_batch_into(&forest_rows, &mut gather_out);
        assert_eq!(
            small_out, gather_out,
            "in-register walk diverged from the gather walk"
        );
        for (r, row) in forest_rows.chunks_exact(small.n_features()).enumerate() {
            assert_eq!(small_out[r], small_tree.predict(row), "row {r} diverged");
        }
    }

    // Ensemble serving through the engine: the same 8-member forest
    // behind one TreeServer vs eight single-tree servers with a
    // client-side vote (the one-at-a-time shape a naive deployment would
    // run). Requests/s over a burst drain, k tree-walks per request on
    // both sides.
    let ensemble_sources: Vec<DecisionTree> = std::iter::once(tree.clone())
        .chain(
            [1750, 1500, 1250, 1000, 800, 600, 400]
                .iter()
                .map(|&l| prune_to_leaves(tree, l)),
        )
        .collect();
    let (forest_serve_per_sec, forest_serve_onebyone_rps) =
        forest_serve_rates(&ensemble_sources, pool, 10_000, 3);
    let forest_serve_vs_onebyone_x8 = forest_serve_per_sec / forest_serve_onebyone_rps.max(1e-12);

    // Registry read cost: what every flush pays to pin an epoch.
    let registry = ModelRegistry::new(tree.clone());
    let registry_read_per_sec = rows_per_sec(1024, || {
        for _ in 0..1024 {
            black_box(registry.current());
        }
    });

    // "Retrained" swap candidates: cheaper prunes of the serving tree —
    // structurally different answers, instant to produce.
    let sources: Vec<DecisionTree> = std::iter::once(tree.clone())
        .chain(
            [1500, 1000, 600, 300]
                .iter()
                .map(|&l| prune_to_leaves(tree, l)),
        )
        .collect();

    // Engine capacity: everything submitted at once (scale 0) — the queue
    // drain rate with full batches.
    let burst = ArrivalProcess::poisson(1.0, 30_000, 3);
    let (cap, _, _) = run_engine(&sources[..1], pool, &burst, 0.0, false);
    assert_eq!(cap.served, 30_000);
    assert_eq!(cap.mismatches, 0, "burst responses diverged from oracle");
    let capacity_rps = cap.served as f64 / cap.wall_s;

    // Steady open-loop Poisson load at half capacity: honest tail latency.
    let offered = capacity_rps * 0.5;
    let steady_arrivals = ArrivalProcess::poisson(offered, 20_000, 7);
    let (steady, _, _) = run_engine(&sources[..1], pool, &steady_arrivals, 1.0, false);
    assert_eq!(
        steady.mismatches, 0,
        "steady responses diverged from oracle"
    );

    // Hot swaps under the same sustained load: zero drops, bit-identical
    // per epoch, and the publisher's worst swap cost.
    let swap_arrivals = ArrivalProcess::poisson(offered, 20_000, 11);
    let (swap, swap_count, publish_max_us) = run_engine(&sources, pool, &swap_arrivals, 1.0, true);
    assert_eq!(swap.served, 20_000, "requests dropped across hot swaps");
    assert_eq!(
        swap.mismatches, 0,
        "hot-swap responses diverged from oracle"
    );

    // ABR-trace replay (decision-per-chunk cadence), compressed 2000x so
    // the bench stays fast while keeping the trace's burst shape.
    let trace = metis_abr::generate_trace(&metis_abr::TraceGenConfig::hsdpa_like(), "bench", 5);
    let abr_arrivals = ArrivalProcess::from_abr_trace(&trace, 1_000_000.0, 400);
    let (abr, _, _) = run_engine(&sources[..1], pool, &abr_arrivals, 0.0005, false);
    assert_eq!(abr.mismatches, 0, "ABR replay diverged from oracle");

    // Fabric: router fan-out and shard scaling, burst-saturated like the
    // engine capacity number; the 1-scenario/1-shard point is the apples-
    // to-apples comparison against the single `TreeServer` above.
    //
    // Shard scaling is a *parallelism* claim: 4 session-affine batcher
    // threads can only beat 1 when the host has cores for them. On a
    // 1-core host the 4-shard run measures OS context-switch overhead
    // (the inversion the seed baseline recorded: ~771k vs ~1032k rps), so
    // the unconditional 4-shard number is reported UNGATED
    // (`fabric_shard4_rps` — no `per_sec`, invisible to bench_guard), and
    // the gated `fabric_shard4_multiworker_per_sec` variant is emitted
    // only on hosts with >= 4 cores, where sharding can genuinely win.
    // The guard ignores current-only metrics, so a few-core baseline
    // stays green while a many-core baseline gates the scaling win.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fabric_shard1_per_sec = fabric_burst_rps(tree, pool, 1, 1, 40_000, 5);
    let fabric_shard4_rps = fabric_burst_rps(tree, pool, 1, 4, 40_000, 5);
    let fabric_shard4_multiworker_per_sec = (cores >= 4).then_some(fabric_shard4_rps);
    let fabric_fanout3_per_sec = fabric_burst_rps(tree, pool, 3, 1, 40_000, 5);
    let fabric_vs_engine = fabric_shard1_per_sec / capacity_rps.max(1e-12);
    if fabric_vs_engine < 0.9 {
        eprintln!(
            "WARNING: 1-shard fabric at {:.2}x the single-server engine (< 0.9x target)",
            fabric_vs_engine
        );
    }
    if fabric_shard4_rps < 0.9 * fabric_shard1_per_sec && cores >= 4 {
        eprintln!(
            "WARNING: 4-shard fabric ({fabric_shard4_rps:.0} rps) below 1-shard \
             ({fabric_shard1_per_sec:.0} rps) despite {cores} cores"
        );
    }

    // Telemetry plane A/B: the full observability stack (stage spans,
    // flight recorder, latency + stage sketches, counters) against the
    // disabled plane on the identical burst. The overhead is gated by
    // bench_guard's absolute `overhead_pct` ceiling; the absolute rates
    // ride along ungated (`rps`, not `per_sec`) for context.
    let (telemetry_enabled_rps, telemetry_disabled_rps, telemetry_overhead_pct) =
        telemetry_overhead(tree, pool, 250_000, 7);

    // Health-observer A/B: the streaming health plane (time-series
    // rings, burn/drift monitors, attribution) scraping an enabled
    // telemetry plane at a punishing ~5 ms cadence, against the same
    // enabled plane unobserved. Marginal cost, gated at the same
    // absolute `overhead_pct` ceiling.
    let (obs_enabled_rps, obs_overhead_pct) = obs_overhead(tree, pool, 250_000, 5);

    // Streaming sketch merge: the aggregation cost of folding 64
    // populated shard sketches into one fleet view (what a scrape or a
    // cross-shard percentile query pays). Gated as a `per_sec` metric.
    let shard_sketches: Vec<LogSketch> = (0..64)
        .map(|i| {
            let sketch = LogSketch::new();
            let mut rng = StdRng::seed_from_u64(i as u64 + 1);
            for _ in 0..4096 {
                sketch.record(rng.gen_range(1e-6..10.0));
            }
            sketch
        })
        .collect();
    let sketch_merge_per_sec = rows_per_sec(shard_sketches.len(), || {
        let fleet = LogSketch::new();
        for sketch in &shard_sketches {
            fleet.merge(sketch);
        }
        black_box(fleet.count());
    });

    // SLO contention: two deadline classes flooding concurrently.
    let (fabric_urgent_p99_us, fabric_lax_p99_us) = fabric_contention_p99_us(tree, pool, 20_000, 3);
    if fabric_urgent_p99_us > fabric_lax_p99_us {
        eprintln!(
            "WARNING: urgent-class p99 ({fabric_urgent_p99_us:.0} us) above lax-class \
             ({fabric_lax_p99_us:.0} us) — class ordering not visible on this host \
             ({} cores; inline flushes bypass the pool scheduler on few-core machines)",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
    }

    // Shadow audit under load: clean promote + dirty reject.
    let (shadow_mirrored, shadow_mismatch_rows, shadow_promotions, shadow_rejected) =
        fabric_shadow_audit(tree, pool, 12_000);

    let report = ServingReport {
        host: metis_bench::measure::host_id(),
        cores,
        n_features: compiled.n_features(),
        tree_nodes: compiled.node_count(),
        tree_single_per_sec,
        compiled_single_per_sec,
        serve_batch_rows_per_sec_b1: batch_rates[0],
        serve_batch_rows_per_sec_b32: batch_rates[1],
        serve_batch_rows_per_sec_b256: batch_rates[2],
        batch256_speedup_vs_single_tree: batch_rates[2] / tree_single_per_sec.max(1e-12),
        kernel_rows_per_sec_b256,
        levelwise_rows_x1_b256,
        kernel_vs_levelwise_x_b256,
        forest_trees: forest.n_trees(),
        forest_rows_per_sec,
        forest_naive_rows_x8: forest_naive_rows_per_sec,
        forest_vs_naive_x8,
        inreg_tree_nodes: small.node_count(),
        kernel_inreg_rows_per_sec,
        kernel_inreg_gather_rows_x1,
        kernel_inreg_vs_gather_x,
        forest_serve_per_sec,
        forest_serve_onebyone_rps,
        forest_serve_vs_onebyone_x8,
        registry_read_per_sec,
        engine_capacity_rps: capacity_rps,
        engine_offered_rps: offered,
        engine_mean_batch: steady.mean_batch,
        engine_p50_us: steady.p50_us,
        engine_p99_us: steady.p99_us,
        engine_max_us: steady.max_us,
        abr_replay_served: abr.served,
        swap_count,
        swap_dropped: 20_000 - swap.served,
        swap_bit_mismatches: swap.mismatches,
        swap_publish_max_us: publish_max_us,
        swap_p99_us: swap.p99_us,
        swap_max_latency_us: swap.max_us,
        fabric_shard1_per_sec,
        fabric_shard4_rps,
        fabric_fanout3_per_sec,
        fabric_shard1_vs_engine: fabric_vs_engine,
        telemetry_enabled_rps,
        telemetry_disabled_rps,
        telemetry_overhead_pct,
        obs_enabled_rps,
        obs_overhead_pct,
        sketch_merge_per_sec,
        fabric_urgent_p99_us,
        fabric_lax_p99_us,
        fabric_shadow_mirrored_rows: shadow_mirrored,
        fabric_shadow_mismatch_rows: shadow_mismatch_rows,
        fabric_shadow_promotions: shadow_promotions,
        fabric_shadow_rejected: shadow_rejected,
    };
    let mut json = serde_json::to_string(&report).expect("report serializes");
    // The multi-worker shard metric is spliced in (rather than being an
    // always-present field) because it must be *absent* on few-core
    // hosts: a `null`/0 placeholder under a `per_sec` name would fail the
    // guard's finiteness check or gate a number that only measures
    // context-switch overhead.
    if let Some(rate) = fabric_shard4_multiworker_per_sec {
        assert!(json.starts_with('{'), "report must be a JSON object");
        json = format!(
            "{{\"fabric_shard4_multiworker_per_sec\":{rate},{}",
            &json[1..]
        );
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(&path, &json).expect("write BENCH_serving.json");
    println!(
        "serving backend: tree {:.0} rows/s, compiled batch-256 {:.0} rows/s ({:.1}x), \
         kernel batch-256 {:.0} rows/s ({:.2}x levelwise); \
         in-register {}-node walk {:.0} rows/s ({:.2}x gather); \
         forest x8 {:.0} rows/s ({:.1}x naive per-tree); \
         ensemble serving {:.0} rps ({:.2}x one-at-a-time x8); \
         engine {:.0} rps capacity, p99 {:.0} us at {:.0} rps offered; \
         {} swaps under load: {} dropped, {} mismatches; \
         fabric 1-shard {:.0} rps ({:.2}x engine), 4-shard {:.0} rps (ungated on {} cores), \
         3-way fan-out {:.0} rps; \
         telemetry plane {:.2}% overhead ({:.0} rps on vs {:.0} rps off), \
         health observer {:.2}% overhead ({:.0} rps observed), \
         sketch merge {:.0}/s; \
         contention p99 urgent {:.0} us vs lax {:.0} us; \
         shadow: {} rows mirrored, {} promoted clean, {} rejected ({} diff rows) -> {}",
        report.tree_single_per_sec,
        report.serve_batch_rows_per_sec_b256,
        report.batch256_speedup_vs_single_tree,
        report.kernel_rows_per_sec_b256,
        report.kernel_vs_levelwise_x_b256,
        report.inreg_tree_nodes,
        report.kernel_inreg_rows_per_sec,
        report.kernel_inreg_vs_gather_x,
        report.forest_rows_per_sec,
        report.forest_vs_naive_x8,
        report.forest_serve_per_sec,
        report.forest_serve_vs_onebyone_x8,
        report.engine_capacity_rps,
        report.engine_p99_us,
        report.engine_offered_rps,
        report.swap_count,
        report.swap_dropped,
        report.swap_bit_mismatches,
        report.fabric_shard1_per_sec,
        report.fabric_shard1_vs_engine,
        report.fabric_shard4_rps,
        report.cores,
        report.fabric_fanout3_per_sec,
        report.telemetry_overhead_pct,
        report.telemetry_enabled_rps,
        report.telemetry_disabled_rps,
        report.obs_overhead_pct,
        report.obs_enabled_rps,
        report.sketch_merge_per_sec,
        report.fabric_urgent_p99_us,
        report.fabric_lax_p99_us,
        report.fabric_shadow_mirrored_rows,
        report.fabric_shadow_promotions,
        report.fabric_shadow_rejected,
        report.fabric_shadow_mismatch_rows,
        path.display()
    );
    // Acceptance bars: batched compiled serving >= 3x the single-request
    // arena walk at batch 256, and the block-major forest >= 3x naive
    // per-tree evaluation at 8 trees. Warn loudly rather than panic so a
    // noisy runner cannot fail the bench step on hardware variance alone.
    if report.batch256_speedup_vs_single_tree < 3.0 {
        eprintln!(
            "WARNING: batch-256 serving speedup is {:.2}x (< 3x target)",
            report.batch256_speedup_vs_single_tree
        );
    }
    if report.kernel_vs_levelwise_x_b256 < 1.5 {
        eprintln!(
            "WARNING: kernel speedup over the levelwise walk is {:.2}x (< 1.5x target)",
            report.kernel_vs_levelwise_x_b256
        );
    }
    if report.forest_vs_naive_x8 < 3.0 {
        eprintln!(
            "WARNING: 8-tree forest speedup over naive per-tree evaluation is {:.2}x (< 3x target)",
            report.forest_vs_naive_x8
        );
    }
    if report.kernel_inreg_vs_gather_x < 1.5 {
        eprintln!(
            "WARNING: in-register kernel speedup over the gather walk is {:.2}x (< 1.5x target; \
             ~1x is expected on hosts without AVX-512)",
            report.kernel_inreg_vs_gather_x
        );
    }
    if report.forest_serve_vs_onebyone_x8 < 2.0 {
        eprintln!(
            "WARNING: ensemble serving speedup over one-at-a-time k=8 is {:.2}x (< 2x target)",
            report.forest_serve_vs_onebyone_x8
        );
    }
}

#[derive(serde::Serialize)]
struct ServingReport {
    /// Machine that produced this artifact (baseline floors are
    /// host-specific; see `metis_bench::measure::host_id`).
    host: String,
    cores: usize,
    n_features: usize,
    tree_nodes: usize,
    tree_single_per_sec: f64,
    compiled_single_per_sec: f64,
    serve_batch_rows_per_sec_b1: f64,
    serve_batch_rows_per_sec_b32: f64,
    serve_batch_rows_per_sec_b256: f64,
    batch256_speedup_vs_single_tree: f64,
    /// Gated: the lane-vectorized kernel walk alone (`predict_batch_into`
    /// with a preallocated output buffer, 256 rows).
    kernel_rows_per_sec_b256: f64,
    /// Ungated reference: the retained pre-kernel levelwise walk on the
    /// same 256 rows, same process (`rows_x1`, not `per_sec`, so the
    /// guard gates the kernel, not the oracle it replaced).
    levelwise_rows_x1_b256: f64,
    /// Same-process kernel speedup over the levelwise walk — the honest
    /// comparison on a host whose absolute rates swing ±30% between runs.
    kernel_vs_levelwise_x_b256: f64,
    forest_trees: usize,
    /// Gated: block-major 8-tree forest evaluation, rows per second, on a
    /// 16384-row batch (feature matrix larger than L2/L3 — the regime the
    /// block-major schedule targets).
    forest_rows_per_sec: f64,
    /// Ungated comparison point: the naive per-tree levelwise walk plus
    /// vote reduce over the same 8 trees (`rows_x8`, not `per_sec`, so
    /// the guard gates the evaluator, not the retained oracle).
    forest_naive_rows_x8: f64,
    forest_vs_naive_x8: f64,
    /// Node count of the in-register A/B tree (≤ `metis_dt::INREG_NODES`).
    inreg_tree_nodes: usize,
    /// Gated: the in-register small-tree walk (`vpermi2*` register
    /// lookups) on a 32-leaf prune, 16384-row batch.
    kernel_inreg_rows_per_sec: f64,
    /// Ungated reference (`rows_x1`, not `per_sec`): the identical tree
    /// with its in-register tables stripped — the hardware-gather path.
    kernel_inreg_gather_rows_x1: f64,
    /// Same-process in-register speedup over the gather walk (~1x on
    /// hosts without AVX-512, where both sides dispatch identically).
    kernel_inreg_vs_gather_x: f64,
    /// Gated: 8-tree ensemble serving through one micro-batching engine
    /// (requests/s, each request a full majority vote).
    forest_serve_per_sec: f64,
    /// Ungated comparison point (`rps`, not `per_sec`): eight single-tree
    /// servers fed the same requests with a client-side vote.
    forest_serve_onebyone_rps: f64,
    forest_serve_vs_onebyone_x8: f64,
    registry_read_per_sec: f64,
    engine_capacity_rps: f64,
    engine_offered_rps: f64,
    engine_mean_batch: f64,
    engine_p50_us: f64,
    engine_p99_us: f64,
    engine_max_us: f64,
    abr_replay_served: usize,
    swap_count: u64,
    swap_dropped: usize,
    swap_bit_mismatches: usize,
    swap_publish_max_us: f64,
    swap_p99_us: f64,
    swap_max_latency_us: f64,
    /// Gated: router burst throughput, 1 scenario × 1 shard (the
    /// apples-to-apples point against `engine_capacity_rps`).
    fabric_shard1_per_sec: f64,
    /// UNGATED (`rps`, not `per_sec`): 1 scenario × 4 session-affine
    /// shards regardless of host width. On a 1-core host this inverts
    /// below the 1-shard number — 4 batcher threads time-slicing one
    /// hardware thread measures context-switch overhead, not sharding —
    /// so it is reported for visibility only. The gated
    /// `fabric_shard4_multiworker_per_sec` twin is spliced into the JSON
    /// only when the host has >= 4 cores.
    fabric_shard4_rps: f64,
    /// Gated: 3 scenarios × 1 shard fan-out through one router.
    fabric_fanout3_per_sec: f64,
    fabric_shard1_vs_engine: f64,
    /// Ungated context (`rps`, not `per_sec`): the 1-shard burst with the
    /// full telemetry plane recording every request.
    telemetry_enabled_rps: f64,
    /// Ungated context: the identical interleaved burst, plane disabled.
    telemetry_disabled_rps: f64,
    /// Gated against bench_guard's absolute `overhead_pct` ceiling (5%):
    /// the throughput cost of the telemetry plane, clamped at 0.
    telemetry_overhead_pct: f64,
    /// Ungated: burst throughput with a live health observer scraping
    /// the enabled telemetry plane every ~5 ms from a side thread.
    obs_enabled_rps: f64,
    /// Gated against bench_guard's absolute `overhead_pct` ceiling (5%):
    /// the *marginal* CPU cost of the streaming health plane (rings,
    /// burn/drift monitors, attribution) on top of the telemetry plane.
    obs_overhead_pct: f64,
    /// Gated: folding 64 populated shard sketches into one fleet sketch
    /// (merges/s) — the cross-shard percentile aggregation cost.
    sketch_merge_per_sec: f64,
    fabric_urgent_p99_us: f64,
    fabric_lax_p99_us: f64,
    fabric_shadow_mirrored_rows: u64,
    fabric_shadow_mismatch_rows: u64,
    fabric_shadow_promotions: usize,
    fabric_shadow_rejected: u64,
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backend, emit_report
}
criterion_main!(benches);
