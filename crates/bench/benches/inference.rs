//! Batched-inference benchmarks: the per-obs matrix-vector engine of the
//! seed (kept verbatim as the oracle) against the batched matrix-matrix
//! engine, measured on the repo's heaviest local teacher (AuTO lRLA
//! scale: 143 state features, 2×128 hidden, 108 actions), plus the
//! throughput of one §4 mask-search gradient step. Emits
//! `BENCH_inference.json` at the workspace root — the artifact the CI
//! regression guard (`bench_guard`) compares against the committed
//! baseline.
//!
//! Two layers of measurement:
//!
//! * **Raw forward** — `N × predict` (pre-refactor `ikj` kernel, the
//!   seed's exact path) vs one `forward_batch` matrix-matrix pass.
//! * **Teacher labelling unit** — what DAgger collection actually pays
//!   per state: the per-obs oracle queries `act_greedy` *and*
//!   `action_probs` (two forwards + two softmaxes per state), while the
//!   batched engine answers both from one forward pass per episode
//!   ([`metis_rl::Policy::probs_and_greedy_batch`]), bit-identically.
//!   The headline `speedup_batch256` is this unit's ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metis_bench::measure::{median_rate, Windows};
use metis_hypergraph::{MaskedMlp, MaskedSystem, OutputKind};
use metis_nn::{argmax, softmax, Activation, Matrix, Mlp, Network};
use metis_rl::{Policy, SoftmaxPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const BATCH_SIZES: [usize; 3] = [1, 32, 256];

fn teacher_net(rng: &mut StdRng) -> Mlp {
    // lRLA scale (the paper's 143-state / 108-action AuTO agent), ReLU
    // like the original systems, so the measurement exposes the
    // linear-algebra engine rather than libm's tanh.
    Mlp::new(
        &[
            metis_flowsched::LRLA_STATE_DIM,
            128,
            128,
            metis_flowsched::LRLA_ACTIONS,
        ],
        Activation::Relu,
        Activation::Linear,
        rng,
    )
}

fn random_obs(n: usize, dim: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

/// The pre-refactor per-obs inference path, reproduced verbatim: one
/// matrix-vector `ikj` product per layer plus separate bias and
/// activation passes — what every teacher query cost before the batched
/// engine.
fn predict_reference(net: &Mlp, row: &[f64]) -> Vec<f64> {
    let mut x = Matrix::row_vector(row);
    for layer in net.layers() {
        let mut pre = x.matmul_reference(layer.weights());
        pre.add_row_broadcast(layer.bias());
        let act = layer.activation();
        pre.map_inplace(|v| act.apply(v));
        x = pre;
    }
    x.data().to_vec()
}

/// The pre-refactor DAgger teacher-labelling unit for one state, exactly
/// as `viper::oracle::collect_episode` issues it: `act_greedy` =
/// `argmax(action_probs(obs))` and then `action_probs` again for the
/// Eq.-1 weight — two independent forwards.
fn label_reference(net: &Mlp, row: &[f64]) -> (usize, Vec<f64>) {
    let action = argmax(&softmax(&predict_reference(net, row)));
    let probs = softmax(&predict_reference(net, row));
    (action, probs)
}

/// Observations per second of `f` under this bench's historical schedule
/// (one long window after warmup — see [`Windows::inference`]).
fn throughput(obs_per_run: usize, f: impl FnMut()) -> f64 {
    median_rate(Windows::inference(), obs_per_run, f)
}

fn bench_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let net = teacher_net(&mut rng);
    let mut group = c.benchmark_group("forward");
    for batch in BATCH_SIZES {
        let obs = random_obs(batch, net.in_dim(), &mut rng);
        let matrix = Matrix::from_rows_vec(&obs);
        group.bench_with_input(BenchmarkId::new("per_obs", batch), &obs, |b, obs| {
            b.iter(|| {
                for row in obs {
                    black_box(predict_reference(&net, row));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", batch), &matrix, |b, m| {
            b.iter(|| black_box(net.forward_inference(m)))
        });
        group.bench_with_input(
            BenchmarkId::new("batched_sharded", batch),
            &matrix,
            |b, m| b.iter(|| black_box(net.forward_batch_threads(m, 0))),
        );
    }
    group.finish();
}

fn bench_labelling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let net = teacher_net(&mut rng);
    let policy = SoftmaxPolicy::new(net.clone());
    let mut group = c.benchmark_group("teacher_labelling");
    let obs = random_obs(256, net.in_dim(), &mut rng);
    let matrix = Matrix::from_rows_vec(&obs);
    group.bench_function("per_obs/256", |b| {
        b.iter(|| {
            for row in &obs {
                black_box(label_reference(&net, row));
            }
        })
    });
    group.bench_function("batched/256", |b| {
        b.iter(|| black_box(policy.probs_and_greedy_batch(&matrix)))
    });
    group.finish();
}

fn bench_mask_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let net = Mlp::new(
        &[metis_abr::OBS_DIM, 32, 6],
        Activation::Tanh,
        Activation::Linear,
        &mut rng,
    );
    let obs = random_obs(256, net.in_dim(), &mut rng);
    let system = MaskedMlp::new(&net, obs, OutputKind::Discrete);
    let mask = vec![0.5; system.n_connections()];
    let reference = system.reference_output();

    let mut group = c.benchmark_group("mask_grad_step");
    group.sample_size(10);
    group.bench_function("per_obs_oracle", |b| {
        b.iter(|| black_box(system.d_value_grad_per_obs(&mask)))
    });
    group.bench_function("batched_1_thread", |b| {
        b.iter(|| black_box(system.d_value_grad(&mask, &reference, 1)))
    });
    group.bench_function("batched_all_cores", |b| {
        b.iter(|| black_box(system.d_value_grad(&mask, &reference, 0)))
    });
    group.finish();
}

/// Measured summary for the JSON artifact consumed by the CI guard.
fn emit_report(_c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let net = teacher_net(&mut rng);
    let policy = SoftmaxPolicy::new(net.clone());

    let mut forward_per_obs = Vec::new();
    let mut forward_batched = Vec::new();
    let mut label_per_obs = Vec::new();
    let mut label_batched = Vec::new();
    for batch in BATCH_SIZES {
        let obs = random_obs(batch, net.in_dim(), &mut rng);
        let matrix = Matrix::from_rows_vec(&obs);
        forward_per_obs.push(throughput(batch, || {
            for row in &obs {
                black_box(predict_reference(&net, row));
            }
        }));
        forward_batched.push(throughput(batch, || {
            black_box(net.forward_batch_threads(&matrix, 0));
        }));
        label_per_obs.push(throughput(batch, || {
            for row in &obs {
                black_box(label_reference(&net, row));
            }
        }));
        label_batched.push(throughput(batch, || {
            black_box(policy.probs_and_greedy_batch(&matrix));
        }));
    }

    let mut mask_rng = StdRng::seed_from_u64(7);
    let mask_net = Mlp::new(
        &[metis_abr::OBS_DIM, 32, 6],
        Activation::Tanh,
        Activation::Linear,
        &mut mask_rng,
    );
    let obs = random_obs(256, mask_net.in_dim(), &mut mask_rng);
    let system = MaskedMlp::new(&mask_net, obs, OutputKind::Discrete);
    let mask = vec![0.5; system.n_connections()];
    let reference = system.reference_output();
    let mask_per_obs = throughput(1, || {
        black_box(system.d_value_grad_per_obs(&mask));
    });
    let mask_batched = throughput(1, || {
        black_box(system.d_value_grad(&mask, &reference, 0));
    });

    let report = InferenceReport {
        host: metis_bench::measure::host_id(),
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        obs_dim: net.in_dim(),
        n_actions: net.out_dim(),
        forward_per_obs_per_sec_b1: forward_per_obs[0],
        forward_per_obs_per_sec_b32: forward_per_obs[1],
        forward_per_obs_per_sec_b256: forward_per_obs[2],
        forward_batched_per_sec_b1: forward_batched[0],
        forward_batched_per_sec_b32: forward_batched[1],
        forward_batched_per_sec_b256: forward_batched[2],
        forward_speedup_batch256: forward_batched[2] / forward_per_obs[2].max(1e-12),
        label_per_obs_per_sec_b256: label_per_obs[2],
        label_batched_per_sec_b256: label_batched[2],
        speedup_batch32: label_batched[1] / label_per_obs[1].max(1e-12),
        speedup_batch256: label_batched[2] / label_per_obs[2].max(1e-12),
        mask_steps_per_sec_oracle: mask_per_obs,
        mask_steps_per_sec_batched: mask_batched,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_inference.json");
    std::fs::write(&path, &json).expect("write BENCH_inference.json");
    println!(
        "teacher labelling at batch 256: {:.0} obs/s per-obs vs {:.0} obs/s batched ({:.2}x); \
         raw forward {:.2}x; mask step {:.1}/s oracle vs {:.1}/s batched -> {}",
        report.label_per_obs_per_sec_b256,
        report.label_batched_per_sec_b256,
        report.speedup_batch256,
        report.forward_speedup_batch256,
        report.mask_steps_per_sec_oracle,
        report.mask_steps_per_sec_batched,
        path.display()
    );
    // The acceptance bar (>= 3x at batch 256) is recorded in the JSON the
    // CI guard diffs against the committed baseline; warn loudly rather
    // than panic so a slow/noisy runner cannot fail the bench step on
    // hardware variance alone.
    if report.speedup_batch256 < 3.0 {
        eprintln!(
            "WARNING: batched labelling speedup at batch 256 is {:.2}x (< 3x target)",
            report.speedup_batch256
        );
    }
}

#[derive(serde::Serialize)]
struct InferenceReport {
    /// Machine that produced this artifact (baseline floors are
    /// host-specific; see `metis_bench::measure::host_id`).
    host: String,
    cores: usize,
    obs_dim: usize,
    n_actions: usize,
    forward_per_obs_per_sec_b1: f64,
    forward_per_obs_per_sec_b32: f64,
    forward_per_obs_per_sec_b256: f64,
    forward_batched_per_sec_b1: f64,
    forward_batched_per_sec_b32: f64,
    forward_batched_per_sec_b256: f64,
    forward_speedup_batch256: f64,
    label_per_obs_per_sec_b256: f64,
    label_batched_per_sec_b256: f64,
    speedup_batch32: f64,
    speedup_batch256: f64,
    mask_steps_per_sec_oracle: f64,
    mask_steps_per_sec_batched: f64,
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forward, bench_labelling, bench_mask_step, emit_report
}
criterion_main!(benches);
