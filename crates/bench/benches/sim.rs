//! Closed-loop co-simulation benchmark: tens of thousands of concurrent
//! ABR sessions driving the live serving fabric in virtual time on one
//! core (`metis_sim::run_abr_cosim`). Emits `BENCH_sim.json` at the
//! workspace root for the `bench_guard` CI regression gate: the gated
//! metrics are `sim_events_per_sec` (decision events fired per wall
//! second, fabric round-trips included) and `sim_sessions_per_sec`
//! (complete sessions simulated per wall second). Every timed run also
//! re-checks the determinism contract — same seed ⇒ same QoE digest —
//! so a perf number can never come from a run that silently diverged.

use criterion::{criterion_group, criterion_main, Criterion};
use metis_abr::{hsdpa_corpus, NetworkTrace, VideoModel};
use metis_bench::measure::{host_id, median};
use metis_dt::{fit, Dataset, DecisionTree, TreeConfig};
use metis_fabric::{FabricConfig, Router, ScenarioSpec, TenantSpec};
use metis_serve::{Clock, ServeConfig};
use metis_sim::{run_abr_cosim, CosimConfig, CosimReport, ModelSwap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSIONS: usize = 50_000;
const RUNS: usize = 3;

/// A fitted ABR policy tree over the 25-feature observation (labels key
/// off buffer and throughput features, so the policy actually branches).
fn abr_tree(seed: u64, classes: usize) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let x: Vec<Vec<f64>> = (0..300)
        .map(|_| {
            (0..metis_abr::OBS_DIM)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect()
        })
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[1] * 3.0 + xi[9] * 2.0 + xi[0]) as usize) % classes)
        .collect();
    fit(
        &Dataset::classification(x, y, classes).unwrap(),
        &TreeConfig {
            max_leaf_nodes: 24,
            ..Default::default()
        },
    )
    .unwrap()
}

fn timed_run(
    initial: &DecisionTree,
    swaps: &[ModelSwap],
    video: &Arc<VideoModel>,
    traces: &[Arc<NetworkTrace>],
    cfg: &CosimConfig,
) -> (CosimReport, f64) {
    let router = Router::new(
        vec![TenantSpec::new("abr")],
        vec![ScenarioSpec::new("pensieve", "abr", initial.clone()).shards(2)],
        FabricConfig {
            serve: ServeConfig {
                max_batch: 512,
                max_delay: Duration::from_secs(3600), // never consulted: virtual
                stripe_rows: 16,
                ..Default::default()
            },
            mirror_batch: 0,
            clock: Clock::virtual_at(0.0),
            ..Default::default()
        },
    );
    let start = Instant::now();
    let report = run_abr_cosim(&router, "pensieve", video, traces, swaps, cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let fabric = router.shutdown();
    assert_eq!(fabric.served, report.decisions, "fabric dropped decisions");
    (report, wall_s)
}

fn emit_report(_c: &mut Criterion) {
    let video = Arc::new(VideoModel::standard(8, 7));
    let classes = video.n_qualities();
    let traces: Vec<Arc<NetworkTrace>> = hsdpa_corpus(8, 5).into_iter().map(Arc::new).collect();
    let initial = abr_tree(1, classes);
    let swaps = vec![ModelSwap {
        at_s: 15.0,
        trees: vec![abr_tree(2, classes)],
    }];
    let cfg = CosimConfig {
        sessions: SESSIONS,
        seed: 42,
        start_window_s: 8.0,
        decision_quantum_s: 0.25,
        wave_cap: 4096,
    };

    let mut digests = Vec::new();
    let mut events_rates = Vec::new();
    let mut sessions_rates = Vec::new();
    let mut last: Option<CosimReport> = None;
    for _ in 0..RUNS {
        let (report, wall_s) = timed_run(&initial, &swaps, &video, &traces, &cfg);
        digests.push(report.qoe_digest);
        events_rates.push(report.events as f64 / wall_s);
        sessions_rates.push(SESSIONS as f64 / wall_s);
        last = Some(report);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "timed runs diverged: {digests:x?}"
    );
    let last = last.unwrap();
    assert_eq!(last.decisions, (SESSIONS * video.n_chunks()) as u64);

    let report = SimReport {
        host: host_id(),
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        sim_sessions: SESSIONS,
        sim_chunks_per_session: video.n_chunks(),
        sim_events_per_sec: median(events_rates),
        sim_sessions_per_sec: median(sessions_rates),
        sim_waves: last.waves,
        sim_mean_wave: last.decisions as f64 / last.waves.max(1) as f64,
        sim_virtual_end_s: last.virtual_end_s,
        sim_mean_qoe: last.mean_qoe,
        sim_qoe_digest: format!("{:016x}", last.qoe_digest),
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    println!(
        "co-sim: {} sessions x {} chunks closed-loop -> {:.0} events/s, {:.0} sessions/s \
         ({} waves, mean {:.0} decisions/wave, virtual end {:.0}s, mean QoE {:.2}, \
         digest {}) -> {}",
        report.sim_sessions,
        report.sim_chunks_per_session,
        report.sim_events_per_sec,
        report.sim_sessions_per_sec,
        report.sim_waves,
        report.sim_mean_wave,
        report.sim_virtual_end_s,
        report.sim_mean_qoe,
        report.sim_qoe_digest,
        path.display()
    );
}

#[derive(serde::Serialize)]
struct SimReport {
    /// Machine that produced this artifact (baseline floors are
    /// host-specific; see `metis_bench::measure::host_id`).
    host: String,
    cores: usize,
    sim_sessions: usize,
    sim_chunks_per_session: usize,
    /// Gated: decision events fired per wall second — the end-to-end
    /// co-simulation rate including every fabric round-trip.
    sim_events_per_sec: f64,
    /// Gated: complete closed-loop sessions simulated per wall second.
    sim_sessions_per_sec: f64,
    sim_waves: u64,
    sim_mean_wave: f64,
    sim_virtual_end_s: f64,
    sim_mean_qoe: f64,
    /// Hex QoE digest of the timed run (determinism witness, ungated).
    sim_qoe_digest: String,
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = emit_report
}
criterion_main!(benches);
