//! Criterion benches behind Figure 31: CART fitting cost at several leaf
//! budgets and the per-step cost of the hypergraph mask search — plus the
//! end-to-end conversion-throughput benchmark of the unified
//! `ConversionPipeline` (single-thread vs all-cores), the fine-granularity
//! persistent-pool vs spawn-per-call comparison, and the cross-workload
//! sharding benchmark (`WorkloadRunner` over a shared budget), whose
//! results are emitted as `BENCH_conversion.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metis_abr::{env_pool, hsdpa_corpus, pensieve_agent, NetworkTrace, PensieveArch, VideoModel};
use metis_bench::measure::{median, median_rate, Windows};
use metis_core::{ConversionConfig, ConversionPipeline, Workload, WorkloadRunner};
use metis_dt::{fit, prune_to_leaves, Criterion as SplitCriterion, Dataset, TreeConfig};
use metis_hypergraph::{MaskConfig, MaskedSystem};
use metis_routing::{optimize_routing, LatencyModel, RouteNetModel, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn pensieve_like_dataset(n: usize, rng: &mut StdRng) -> Dataset {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..metis_abr::OBS_DIM)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect()
        })
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 3.0 + xi[1] * 2.0) as usize) % 6)
        .collect();
    Dataset::classification(x, y, 6).unwrap()
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ds = pensieve_like_dataset(5000, &mut rng);
    let mut group = c.benchmark_group("tree_extraction");
    for leaves in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(leaves),
            &leaves,
            |b, &leaves| {
                b.iter(|| {
                    let grown = fit(
                        &ds,
                        &TreeConfig {
                            max_leaf_nodes: leaves * 2,
                            criterion: SplitCriterion::Gini,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(prune_to_leaves(&grown, leaves))
                })
            },
        );
    }
    group.finish();
}

fn bench_mask_step(c: &mut Criterion) {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let sample = metis_routing::demand_corpus(14, 12, 1, 5)[0].clone();
    let routing = optimize_routing(&topo, &sample.demands, &latency, 1);
    let mut rng = StdRng::seed_from_u64(4);
    let model = RouteNetModel::new(6, &mut rng);
    let system = metis_core::MaskedRouting::new(&model, &topo, &sample.demands, &routing);
    let n = system.n_connections();

    let mut group = c.benchmark_group("mask_search");
    group.sample_size(10);
    group.bench_function(format!("10_steps_{n}_connections"), |b| {
        b.iter(|| {
            let cfg = MaskConfig {
                steps: 10,
                ..Default::default()
            };
            black_box(metis_hypergraph::optimize_mask(&system, &cfg))
        })
    });
    group.finish();
}

/// Fine-granularity fork/join rate: calls per second of a small (64-item,
/// 2-stripe, trivial body) indexed map — the shape the inner batched
/// stages issue thousands of times per conversion — through the
/// persistent pool vs the retained spawn-per-call reference. This is the
/// overhead the pool exists to delete. Median-of-windows via the shared
/// [`metis_bench::measure`] loop: the pool mode sustains ~1M calls/s (a
/// fixed call count would finish in microseconds), and spawn-mode
/// thread-creation latency is noisy, so single-window rates swing far
/// more than the guard tolerance.
fn fine_map_calls_per_sec(use_pool: bool) -> f64 {
    const N: usize = 64;
    let mut acc = 0usize;
    let mut calls = 0usize;
    let rate = median_rate(Windows::fine(), 1, || {
        let out = if use_pool {
            metis_nn::par::parallel_map_indexed(N, 2, |i| i * 3 + calls)
        } else {
            metis_nn::par::reference::parallel_map_indexed(N, 2, |i| i * 3 + calls)
        };
        acc = acc.wrapping_add(out[N - 1]);
        calls += 1;
    });
    black_box(acc);
    rate
}

/// Frontier-parallel CART fit rate (fits per second) on a paper-shaped
/// workload: ABR-width features where per-node feature-parallelism runs
/// out long before a wide pool does — exactly the gap
/// [`TreeConfig::frontier`] speculation exists to fill. Fitted with
/// defaults (`threads: 0`, `frontier: 0` = resolved width), so the gated
/// number tracks whatever the host genuinely runs.
fn frontier_fit_per_sec(ds: &Dataset) -> f64 {
    median_rate(Windows::fine(), 1, || {
        black_box(
            fit(
                black_box(ds),
                &TreeConfig {
                    max_leaf_nodes: 96,
                    criterion: SplitCriterion::Gini,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
    })
}

/// Per-workload and aggregate throughput of [`WorkloadRunner`] sharding
/// several conversion pipelines (a parameter sweep over the ABR scenario)
/// across one shared thread budget.
struct WorkloadShardingReport {
    per_workload: Vec<(String, f64)>,
    aggregate_per_sec: f64,
}

/// Median-of-3 [`workload_sharding_once`]: per-workload rates contend on
/// the shared pool, so single runs are too noisy to gate at 20%.
fn workload_sharding_report(
    pool: &[metis_abr::AbrEnv],
    agent_policy: &(impl metis_rl::Policy + Sync),
    base_cfg: &ConversionConfig,
) -> WorkloadShardingReport {
    let runs: Vec<WorkloadShardingReport> = (0..3)
        .map(|_| workload_sharding_once(pool, agent_policy, base_cfg))
        .collect();
    WorkloadShardingReport {
        per_workload: runs[0]
            .per_workload
            .iter()
            .enumerate()
            .map(|(k, (name, _))| {
                (
                    name.clone(),
                    median(runs.iter().map(|r| r.per_workload[k].1).collect()),
                )
            })
            .collect(),
        aggregate_per_sec: median(runs.iter().map(|r| r.aggregate_per_sec).collect()),
    }
}

fn workload_sharding_once(
    pool: &[metis_abr::AbrEnv],
    agent_policy: &(impl metis_rl::Policy + Sync),
    base_cfg: &ConversionConfig,
) -> WorkloadShardingReport {
    // Three concurrent workloads: the base config plus two sweep points
    // (different leaf budgets and seeds — the "many scenarios at once"
    // serving shape).
    let sweep: Vec<(String, usize, u64)> = vec![
        ("abr_leaves64".to_string(), 64, 3),
        ("abr_leaves32".to_string(), 32, 4),
        ("abr_leaves96".to_string(), 96, 5),
    ];
    let start = Instant::now();
    let results = WorkloadRunner::new(0).run(
        sweep
            .iter()
            .map(|(name, leaves, seed)| {
                let cfg = ConversionConfig {
                    max_leaf_nodes: *leaves,
                    ..base_cfg.clone()
                };
                Workload::new(name.clone(), move || {
                    ConversionPipeline::new(pool, agent_policy, |_| 0.0)
                        .conversion(cfg)
                        .seed(*seed)
                        .threads(0)
                        .run()
                })
            })
            .collect(),
    );
    let wall = start.elapsed().as_secs_f64();
    let total_states: usize = results.iter().map(|r| r.value.stats.states_collected).sum();
    WorkloadShardingReport {
        per_workload: results
            .iter()
            .map(|r| (r.name.clone(), r.value.stats.samples_per_sec()))
            .collect(),
        aggregate_per_sec: total_states as f64 / wall.max(1e-12),
    }
}

/// End-to-end §3.2 conversion throughput (labelled states per second
/// through collection + resampling + fit + prune), single-thread vs
/// all-cores, on the ABR substrate — plus the pool-vs-spawn
/// fine-granularity comparison and the cross-workload sharding run.
/// Emits `BENCH_conversion.json`.
fn bench_conversion_throughput(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let video = Arc::new(VideoModel::standard(24, 3));
    let traces: Vec<Arc<NetworkTrace>> = hsdpa_corpus(6, 31).into_iter().map(Arc::new).collect();
    let pool = env_pool(&video, &traces);
    let agent = pensieve_agent(PensieveArch::Original, 24, &mut rng);
    let cfg = ConversionConfig {
        max_leaf_nodes: 64,
        episodes_per_round: 12,
        max_steps: 256,
        dagger_rounds: 1,
        ..Default::default()
    };
    let run = |threads: usize| {
        ConversionPipeline::new(&pool, &agent.policy, |_| 0.0)
            .conversion(cfg.clone())
            .seed(3)
            .threads(threads)
            .run()
    };

    let mut group = c.benchmark_group("conversion_throughput");
    group.sample_size(5);
    group.bench_function("pipeline_1_thread", |b| b.iter(|| black_box(run(1))));
    group.bench_function("pipeline_all_cores", |b| b.iter(|| black_box(run(0))));
    group.finish();

    // Measured summary for the JSON artifact (one timed run per mode; the
    // criterion samples above give the distribution).
    let single = run(1);
    let parallel = run(0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm the pool once so neither fine-map mode pays first-use setup.
    black_box(metis_nn::par::parallel_map_indexed(8, 2, |i| i));
    let pool_map_fine_per_sec = fine_map_calls_per_sec(true);
    let spawn_map_fine_per_sec = fine_map_calls_per_sec(false);

    let fit_ds = pensieve_like_dataset(5000, &mut rng);
    let frontier_fit_per_sec = frontier_fit_per_sec(&fit_ds);

    let sharding = workload_sharding_report(&pool, &agent.policy, &cfg);
    let workload_per_sec = |name: &str| {
        sharding
            .per_workload
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rate)| *rate)
            .expect("workload present")
    };

    let report = ThroughputReport {
        host: metis_bench::measure::host_id(),
        cores,
        threads_parallel: parallel.stats.threads,
        states_per_run: single.stats.states_collected,
        leaf_budget: cfg.max_leaf_nodes,
        samples_per_sec_single: single.stats.samples_per_sec(),
        samples_per_sec_parallel: parallel.stats.samples_per_sec(),
        speedup: parallel.stats.samples_per_sec() / single.stats.samples_per_sec().max(1e-12),
        collect_s_single: single.stats.collect_s,
        fit_s_single: single.stats.fit_s,
        collect_s_parallel: parallel.stats.collect_s,
        fit_s_parallel: parallel.stats.fit_s,
        pool_map_fine_per_sec,
        spawn_map_fine_per_sec,
        pool_fine_speedup: pool_map_fine_per_sec / spawn_map_fine_per_sec.max(1e-12),
        frontier_fit_per_sec,
        workload_count: sharding.per_workload.len(),
        workload_abr_leaves64_per_sec: workload_per_sec("abr_leaves64"),
        workload_abr_leaves32_per_sec: workload_per_sec("abr_leaves32"),
        workload_abr_leaves96_per_sec: workload_per_sec("abr_leaves96"),
        workload_agg_per_sec: sharding.aggregate_per_sec,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_conversion.json");
    std::fs::write(&path, &json).expect("write BENCH_conversion.json");
    println!(
        "conversion throughput: {:.0} samples/s single-thread, {:.0} samples/s on {} threads \
         ({:.2}x) -> {}",
        report.samples_per_sec_single,
        report.samples_per_sec_parallel,
        report.threads_parallel,
        report.speedup,
        path.display()
    );
    println!(
        "fine-granularity fork/join: pool {:.0} calls/s vs spawn {:.0} calls/s ({:.1}x)",
        report.pool_map_fine_per_sec, report.spawn_map_fine_per_sec, report.pool_fine_speedup
    );
    println!(
        "frontier-parallel CART: {:.2} fits/s (5000x{} rows, 96 leaves)",
        report.frontier_fit_per_sec,
        metis_abr::OBS_DIM
    );
    println!(
        "workload sharding ({} pipelines, shared budget): {:.0} aggregate samples/s",
        report.workload_count, report.workload_agg_per_sec
    );
}

#[derive(serde::Serialize)]
struct ThroughputReport {
    /// Machine that produced this artifact (baseline floors are
    /// host-specific; see `metis_bench::measure::host_id`).
    host: String,
    cores: usize,
    threads_parallel: usize,
    states_per_run: usize,
    leaf_budget: usize,
    samples_per_sec_single: f64,
    samples_per_sec_parallel: f64,
    speedup: f64,
    collect_s_single: f64,
    fit_s_single: f64,
    collect_s_parallel: f64,
    fit_s_parallel: f64,
    /// Small-map call rate on the persistent pool…
    pool_map_fine_per_sec: f64,
    /// …vs the retained spawn-per-call reference (same work).
    spawn_map_fine_per_sec: f64,
    pool_fine_speedup: f64,
    /// Frontier-parallel CART fits per second (5000x25 ABR-shaped rows,
    /// 96-leaf budget, default thread/frontier resolution).
    frontier_fit_per_sec: f64,
    workload_count: usize,
    workload_abr_leaves64_per_sec: f64,
    workload_abr_leaves32_per_sec: f64,
    workload_abr_leaves96_per_sec: f64,
    /// Total labelled states over the sharded run's wall clock.
    workload_agg_per_sec: f64,
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree_fit, bench_mask_step, bench_conversion_throughput
}
criterion_main!(benches);
