//! Criterion benches behind Figure 31: CART fitting cost at several leaf
//! budgets and the per-step cost of the hypergraph mask search — plus the
//! end-to-end conversion-throughput benchmark of the unified
//! `ConversionPipeline` (single-thread vs all-cores), whose results are
//! emitted as `BENCH_conversion.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metis_abr::{env_pool, hsdpa_corpus, pensieve_agent, NetworkTrace, PensieveArch, VideoModel};
use metis_core::{ConversionConfig, ConversionPipeline};
use metis_dt::{fit, prune_to_leaves, Criterion as SplitCriterion, Dataset, TreeConfig};
use metis_hypergraph::{MaskConfig, MaskedSystem};
use metis_routing::{optimize_routing, LatencyModel, RouteNetModel, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn pensieve_like_dataset(n: usize, rng: &mut StdRng) -> Dataset {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..metis_abr::OBS_DIM)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect()
        })
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 3.0 + xi[1] * 2.0) as usize) % 6)
        .collect();
    Dataset::classification(x, y, 6).unwrap()
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ds = pensieve_like_dataset(5000, &mut rng);
    let mut group = c.benchmark_group("tree_extraction");
    for leaves in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(leaves),
            &leaves,
            |b, &leaves| {
                b.iter(|| {
                    let grown = fit(
                        &ds,
                        &TreeConfig {
                            max_leaf_nodes: leaves * 2,
                            criterion: SplitCriterion::Gini,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(prune_to_leaves(&grown, leaves))
                })
            },
        );
    }
    group.finish();
}

fn bench_mask_step(c: &mut Criterion) {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let sample = metis_routing::demand_corpus(14, 12, 1, 5)[0].clone();
    let routing = optimize_routing(&topo, &sample.demands, &latency, 1);
    let mut rng = StdRng::seed_from_u64(4);
    let model = RouteNetModel::new(6, &mut rng);
    let system = metis_core::MaskedRouting::new(&model, &topo, &sample.demands, &routing);
    let n = system.n_connections();

    let mut group = c.benchmark_group("mask_search");
    group.sample_size(10);
    group.bench_function(format!("10_steps_{n}_connections"), |b| {
        b.iter(|| {
            let cfg = MaskConfig {
                steps: 10,
                ..Default::default()
            };
            black_box(metis_hypergraph::optimize_mask(&system, &cfg))
        })
    });
    group.finish();
}

/// End-to-end §3.2 conversion throughput (labelled states per second
/// through collection + resampling + fit + prune), single-thread vs
/// all-cores, on the ABR substrate. Emits `BENCH_conversion.json`.
fn bench_conversion_throughput(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let video = Arc::new(VideoModel::standard(24, 3));
    let traces: Vec<Arc<NetworkTrace>> = hsdpa_corpus(6, 31).into_iter().map(Arc::new).collect();
    let pool = env_pool(&video, &traces);
    let agent = pensieve_agent(PensieveArch::Original, 24, &mut rng);
    let cfg = ConversionConfig {
        max_leaf_nodes: 64,
        episodes_per_round: 12,
        max_steps: 256,
        dagger_rounds: 1,
        ..Default::default()
    };
    let run = |threads: usize| {
        ConversionPipeline::new(&pool, &agent.policy, |_| 0.0)
            .conversion(cfg.clone())
            .seed(3)
            .threads(threads)
            .run()
    };

    let mut group = c.benchmark_group("conversion_throughput");
    group.sample_size(5);
    group.bench_function("pipeline_1_thread", |b| b.iter(|| black_box(run(1))));
    group.bench_function("pipeline_all_cores", |b| b.iter(|| black_box(run(0))));
    group.finish();

    // Measured summary for the JSON artifact (one timed run per mode; the
    // criterion samples above give the distribution).
    let single = run(1);
    let parallel = run(0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = ThroughputReport {
        cores,
        threads_parallel: parallel.stats.threads,
        states_per_run: single.stats.states_collected,
        leaf_budget: cfg.max_leaf_nodes,
        samples_per_sec_single: single.stats.samples_per_sec(),
        samples_per_sec_parallel: parallel.stats.samples_per_sec(),
        speedup: parallel.stats.samples_per_sec() / single.stats.samples_per_sec().max(1e-12),
        collect_s_single: single.stats.collect_s,
        fit_s_single: single.stats.fit_s,
        collect_s_parallel: parallel.stats.collect_s,
        fit_s_parallel: parallel.stats.fit_s,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_conversion.json");
    std::fs::write(&path, &json).expect("write BENCH_conversion.json");
    println!(
        "conversion throughput: {:.0} samples/s single-thread, {:.0} samples/s on {} threads \
         ({:.2}x) -> {}",
        report.samples_per_sec_single,
        report.samples_per_sec_parallel,
        report.threads_parallel,
        report.speedup,
        path.display()
    );
}

#[derive(serde::Serialize)]
struct ThroughputReport {
    cores: usize,
    threads_parallel: usize,
    states_per_run: usize,
    leaf_budget: usize,
    samples_per_sec_single: f64,
    samples_per_sec_parallel: f64,
    speedup: f64,
    collect_s_single: f64,
    fit_s_single: f64,
    collect_s_parallel: f64,
    fit_s_parallel: f64,
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree_fit, bench_mask_step, bench_conversion_throughput
}
criterion_main!(benches);
