//! Criterion benches behind Figure 31: CART fitting cost at several leaf
//! budgets and the per-step cost of the hypergraph mask search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metis_dt::{fit, prune_to_leaves, Criterion as SplitCriterion, Dataset, TreeConfig};
use metis_hypergraph::{MaskConfig, MaskedSystem};
use metis_routing::{optimize_routing, LatencyModel, RouteNetModel, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn pensieve_like_dataset(n: usize, rng: &mut StdRng) -> Dataset {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..metis_abr::OBS_DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x.iter().map(|xi| ((xi[0] * 3.0 + xi[1] * 2.0) as usize) % 6).collect();
    Dataset::classification(x, y, 6).unwrap()
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ds = pensieve_like_dataset(5000, &mut rng);
    let mut group = c.benchmark_group("tree_extraction");
    for leaves in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &leaves, |b, &leaves| {
            b.iter(|| {
                let grown = fit(
                    &ds,
                    &TreeConfig {
                        max_leaf_nodes: leaves * 2,
                        criterion: SplitCriterion::Gini,
                        ..Default::default()
                    },
                )
                .unwrap();
                black_box(prune_to_leaves(&grown, leaves))
            })
        });
    }
    group.finish();
}

fn bench_mask_step(c: &mut Criterion) {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let sample = metis_routing::demand_corpus(14, 12, 1, 5)[0].clone();
    let routing = optimize_routing(&topo, &sample.demands, &latency, 1);
    let mut rng = StdRng::seed_from_u64(4);
    let model = RouteNetModel::new(6, &mut rng);
    let system = metis_core::MaskedRouting::new(&model, &topo, &sample.demands, &routing);
    let n = system.n_connections();

    let mut group = c.benchmark_group("mask_search");
    group.sample_size(10);
    group.bench_function(format!("10_steps_{n}_connections"), |b| {
        b.iter(|| {
            let cfg = MaskConfig { steps: 10, ..Default::default() };
            black_box(metis_hypergraph::optimize_mask(&system, &cfg))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree_fit, bench_mask_step
}
criterion_main!(benches);
