//! Thin wrapper: regenerates the `fig15b_auto_fct` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig15b_auto_fct")
}
