//! Thin wrapper: regenerates the `fig07_pensieve_tree` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig07_pensieve_tree")
}
