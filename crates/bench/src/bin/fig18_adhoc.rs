//! Thin wrapper: regenerates the `fig18_adhoc` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig18_adhoc")
}
