//! Thin wrapper: regenerates the `fig11_model_design` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig11_model_design")
}
