//! Thin wrapper: regenerates the `fig16_latency_coverage` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig16_latency_coverage")
}
