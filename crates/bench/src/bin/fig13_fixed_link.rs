//! Thin wrapper: regenerates the `fig13_fixed_link` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig13_fixed_link")
}
