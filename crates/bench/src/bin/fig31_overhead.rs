//! Thin wrapper: regenerates the `fig31_overhead` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig31_overhead")
}
