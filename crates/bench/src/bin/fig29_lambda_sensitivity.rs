//! Thin wrapper: regenerates the `fig29_lambda_sensitivity` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig29_lambda_sensitivity")
}
