//! Thin wrapper: regenerates the `fig27_baseline_cmp` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig27_baseline_cmp")
}
