//! Run the complete experiment suite, teeing each result into `results/`.
fn main() -> std::io::Result<()> {
    for (name, f) in metis_bench::experiments::registry() {
        eprintln!(">>> running {name}");
        let t0 = std::time::Instant::now();
        metis_bench::run_and_tee(name, f)?;
        eprintln!(">>> {name} done in {:.1}s\n", t0.elapsed().as_secs_f64());
    }
    Ok(())
}
