//! Thin wrapper: regenerates the `fig20_resampling` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig20_resampling")
}
