//! Thin wrapper: regenerates the `fig17b_deployment_cost` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig17b_deployment_cost")
}
