//! Thin wrapper: regenerates the `fig17a_median_flows` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig17a_median_flows")
}
