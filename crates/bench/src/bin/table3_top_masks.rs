//! Thin wrapper: regenerates the `table3_top_masks` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("table3_top_masks")
}
