//! Thin wrapper: regenerates the `fig15a_pensieve_qoe` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig15a_pensieve_qoe")
}
