//! Thin wrapper: regenerates the `fig28_leaf_sensitivity` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig28_leaf_sensitivity")
}
