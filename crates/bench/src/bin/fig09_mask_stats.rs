//! Thin wrapper: regenerates the `fig09_mask_stats` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig09_mask_stats")
}
