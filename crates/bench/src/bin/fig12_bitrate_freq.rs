//! Thin wrapper: regenerates the `fig12_bitrate_freq` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig12_bitrate_freq")
}
