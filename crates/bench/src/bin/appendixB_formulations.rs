//! Thin wrapper: regenerates the `appendixB_formulations` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("appendixB_formulations")
}
