//! CI bench regression guard: compare freshly produced `BENCH_*.json`
//! artifacts against the committed baselines and fail if any throughput
//! metric regressed by more than the allowed fraction — or silently
//! disappeared. The comparison contract lives (and is unit-tested) in
//! [`metis_bench::guard`].
//!
//! Usage:
//!
//! ```text
//! bench_guard <baseline_dir> <current_dir> [--max-regress 0.20]
//! ```
//!
//! Every `BENCH_*.json` present in `baseline_dir` must exist in
//! `current_dir`; within each file, every top-level numeric field whose
//! name contains `per_sec` (throughput semantics: higher is better) is
//! compared. A baseline metric with no counterpart in the current run
//! (renamed or dropped) fails with a clear message; fields present only
//! in the current file (newly added metrics) are ignored, so adding
//! metrics never breaks the guard.

use std::process::ExitCode;

const DEFAULT_MAX_REGRESS: f64 = 0.20;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regress = DEFAULT_MAX_REGRESS;
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regress" {
            max_regress = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-regress needs a fraction, e.g. 0.20");
        } else {
            dirs.push(arg.clone());
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        eprintln!("usage: bench_guard <baseline_dir> <current_dir> [--max-regress 0.20]");
        return ExitCode::FAILURE;
    };

    let outcome = metis_bench::guard::compare_dirs(baseline_dir, current_dir, max_regress);
    for line in &outcome.log {
        println!("{line}");
    }
    for failure in &outcome.failures {
        eprintln!("bench_guard: {failure}");
    }
    println!(
        "bench_guard: {} metrics compared, {} failures (allowed regression {:.0}%)",
        outcome.compared,
        outcome.failures.len(),
        max_regress * 100.0
    );
    if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
