//! CI bench regression guard: compare freshly produced `BENCH_*.json`
//! artifacts against the committed baselines and fail if any throughput
//! metric regressed by more than the allowed fraction.
//!
//! Usage:
//!
//! ```text
//! bench_guard <baseline_dir> <current_dir> [--max-regress 0.20]
//! ```
//!
//! Every `BENCH_*.json` present in `baseline_dir` must exist in
//! `current_dir`; within each file, every top-level numeric field whose
//! name contains `per_sec` (throughput semantics: higher is better) is
//! compared. Fields present only in the current file (newly added
//! metrics) are ignored, so adding metrics never breaks the guard.

use serde::Value;
use std::path::Path;
use std::process::ExitCode;

const DEFAULT_MAX_REGRESS: f64 = 0.20;

fn load(path: &Path) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let object = value
        .as_object()
        .ok_or_else(|| format!("{}: not a JSON object", path.display()))?;
    Ok(object
        .iter()
        .filter(|(k, _)| k.contains("per_sec"))
        .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
        .collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regress = DEFAULT_MAX_REGRESS;
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regress" {
            max_regress = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-regress needs a fraction, e.g. 0.20");
        } else {
            dirs.push(arg.clone());
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        eprintln!("usage: bench_guard <baseline_dir> <current_dir> [--max-regress 0.20]");
        return ExitCode::FAILURE;
    };

    let mut baselines: Vec<_> = std::fs::read_dir(baseline_dir)
        .expect("baseline dir readable")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("BENCH_") && name.ends_with(".json")
        })
        .map(|e| e.path())
        .collect();
    baselines.sort();
    if baselines.is_empty() {
        eprintln!("bench_guard: no BENCH_*.json baselines in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for baseline_path in &baselines {
        let name = baseline_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .to_string();
        let current_path = Path::new(current_dir).join(&name);
        let baseline = match load(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_guard: {e}");
                failures += 1;
                continue;
            }
        };
        let current = match load(&current_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench_guard: missing/invalid current artifact: {e}");
                failures += 1;
                continue;
            }
        };
        for (field, old) in &baseline {
            let Some((_, new)) = current.iter().find(|(k, _)| k == field) else {
                eprintln!("bench_guard: {name}: field `{field}` missing from current run");
                failures += 1;
                continue;
            };
            compared += 1;
            let floor = old * (1.0 - max_regress);
            let delta = (new - old) / old.max(1e-12) * 100.0;
            let ok = *new >= floor || !old.is_finite();
            println!(
                "{} {name}:{field}: {old:.0} -> {new:.0} ({delta:+.1}%)",
                if ok { "ok  " } else { "FAIL" },
            );
            if !ok {
                failures += 1;
            }
        }
    }
    println!(
        "bench_guard: {compared} metrics compared, {failures} failures (allowed regression {:.0}%)",
        max_regress * 100.0
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
