//! Thin wrapper: regenerates the `fig14_oversampling` result (see DESIGN.md §3).
fn main() -> std::io::Result<()> {
    metis_bench::run_by_name("fig14_oversampling")
}
