//! RouteNet*-side experiments: Table 3 / Figure 8, Figure 9, Figure 18,
//! and the λ sensitivity study (Figures 29–30).

use crate::setup::{self, RoutingSetup};
use metis_core::{
    adhoc_points, interpret_routing, mask_mass_per_link, pearson, quadrant13_fraction,
};
use metis_hypergraph::MaskConfig;
use std::io::Write;

fn trained() -> RoutingSetup {
    setup::routing(42, 20, 10, 80)
}

/// Table 3 / Figure 8: top-5 mask-value interpretations with the
/// shorter / less-congested classification.
pub fn table3(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Table 3: top mask-value interpretations (NSFNet) ==="
    )?;
    let s = trained();
    let cfg = MaskConfig {
        steps: 150,
        ..Default::default()
    };
    let (result, report) = interpret_routing(
        &s.model,
        &s.topo,
        &s.samples[0].demands,
        &s.routings[0],
        &cfg,
        5,
    );
    writeln!(
        out,
        "final loss terms: D={:.4} ||W||={:.2} H={:.2}",
        result.final_d, result.final_l1, result.final_entropy
    )?;
    writeln!(
        out,
        "{:<24} {:<8} {:>8}  interpretation",
        "routing path", "link", "mask"
    )?;
    for r in &report {
        writeln!(
            out,
            "{:<24} {:<8} {:>8.3}  {}",
            r.path, r.link, r.mask, r.kind
        )?;
    }
    writeln!(
        out,
        "(paper: top connections classified as Shorter / Less congested)"
    )?;
    Ok(())
}

/// Figure 9: (a) mask-value CDF over many experiments (bimodal),
/// (b) Pearson correlation of per-link mask mass with link traffic.
pub fn fig09(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 9: mask distribution and traffic correlation ==="
    )?;
    let s = trained();
    let cfg = MaskConfig {
        steps: 150,
        ..Default::default()
    };
    let mut all_masks = Vec::new();
    let mut corr_per_sample = Vec::new();
    for (sample, routing) in s.samples.iter().zip(s.routings.iter()) {
        let system = metis_core::MaskedRouting::new(&s.model, &s.topo, &sample.demands, routing);
        let result = metis_hypergraph::optimize_mask(&system, &cfg);
        // (b) per-link mask mass vs link traffic.
        let mass = mask_mass_per_link(&s.topo, routing, &result.mask);
        let loads = s.latency.link_loads(&s.topo, &sample.demands, routing);
        let used: Vec<usize> = (0..s.topo.n_links()).filter(|&l| loads[l] > 0.0).collect();
        let m: Vec<f64> = used.iter().map(|&l| mass[l]).collect();
        let t: Vec<f64> = used.iter().map(|&l| loads[l]).collect();
        corr_per_sample.push(pearson(&m, &t));
        all_masks.extend(result.mask);
    }
    // (a) CDF summary.
    let mut sorted = all_masks.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    writeln!(
        out,
        "(a) mask-value CDF over {} experiments ({} masks):",
        s.samples.len(),
        sorted.len()
    )?;
    for p in [5.0, 25.0, 50.0, 75.0, 95.0] {
        writeln!(
            out,
            "  p{:<3} {:.3}",
            p as u32,
            metis_abr::percentile(&sorted, p)
        )?;
    }
    let median_frac =
        sorted.iter().filter(|&&m| m > 0.2 && m < 0.8).count() as f64 / sorted.len() as f64;
    writeln!(
        out,
        "  fraction in the undetermined band (0.2, 0.8): {:.1}%",
        median_frac * 100.0
    )?;
    let mean_corr = metis_core::mean(&corr_per_sample);
    writeln!(
        out,
        "(b) Pearson r(Σ_e W_ve, link traffic) mean over samples: {:.2}",
        mean_corr
    )?;
    writeln!(out, "(paper: few median masks; r = 0.81)")?;
    Ok(())
}

/// Figure 18: ad-hoc rerouting indicator — (w01 − w02, l1 − l2) quadrant
/// statistics.
pub fn fig18(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "=== Figure 18: ad-hoc adjustment indicator ===")?;
    let s = trained();
    let cfg = MaskConfig {
        steps: 150,
        ..Default::default()
    };
    let mut points = Vec::new();
    for (sample, routing) in s.samples.iter().zip(s.routings.iter()) {
        let system = metis_core::MaskedRouting::new(&s.model, &s.topo, &sample.demands, routing);
        let result = metis_hypergraph::optimize_mask(&system, &cfg);
        points.extend(
            adhoc_points(&s.topo, &sample.demands, routing, &result.mask, &s.latency)
                .into_iter()
                .map(|p| (p.dw, p.dl)),
        );
    }
    let q13 = quadrant13_fraction(&points);
    let near: f64 = points
        .iter()
        .filter(|(x, y)| x * y <= 0.0 && (x.abs() < 0.05 || y.abs() < 0.5))
        .count() as f64
        / points.len().max(1) as f64;
    writeln!(out, "candidate-pair points collected: {}", points.len())?;
    writeln!(out, "fraction in quadrants I/III: {:.1}%", q13 * 100.0)?;
    writeln!(
        out,
        "fraction near the axes (weak signal): {:.1}%",
        near * 100.0
    )?;
    writeln!(out, "(paper: 72% in quadrants I/III, +19% close to them)")?;
    Ok(())
}

/// Figures 29–30 (Appendix F.2): sensitivity of the mask to λ1 and λ2.
pub fn fig29(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figures 29-30: lambda sensitivity of the mask search ==="
    )?;
    let s = trained();
    let sample = &s.samples[0];
    let routing = &s.routings[0];
    let system = metis_core::MaskedRouting::new(&s.model, &s.topo, &sample.demands, routing);

    writeln!(out, "varying lambda1 (lambda2 = 1):")?;
    writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>12}",
        "lambda1", "||W||/|I|", "H(W)/n", "frac>0.8"
    )?;
    for l1 in [0.05, 0.125, 0.25, 0.5, 1.0, 2.0] {
        let cfg = MaskConfig {
            lambda1: l1,
            steps: 150,
            ..Default::default()
        };
        let r = metis_hypergraph::optimize_mask(&system, &cfg);
        let high = r.mask.iter().filter(|&&m| m > 0.8).count() as f64 / r.mask.len() as f64;
        writeln!(
            out,
            "{:>8.3} {:>10.3} {:>10.3} {:>11.1}%",
            l1,
            r.scale(),
            r.mean_entropy(),
            high * 100.0
        )?;
    }

    writeln!(out, "varying lambda2 (lambda1 = 0.25):")?;
    writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>12}",
        "lambda2", "||W||/|I|", "H(W)/n", "frac median"
    )?;
    for l2 in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let cfg = MaskConfig {
            lambda2: l2,
            steps: 150,
            ..Default::default()
        };
        let r = metis_hypergraph::optimize_mask(&system, &cfg);
        writeln!(
            out,
            "{:>8.2} {:>10.3} {:>10.3} {:>11.1}%",
            l2,
            r.scale(),
            r.mean_entropy(),
            r.median_fraction(0.2, 0.8) * 100.0
        )?;
    }
    writeln!(
        out,
        "(paper: higher lambda1 shrinks ||W||; higher lambda2 polarizes masks)"
    )?;
    Ok(())
}
