//! Figure 27 (Appendix E): faithfulness of the Metis decision tree against
//! LIME and LEMNA across k-means cluster counts, for three teacher agents
//! (Pensieve, AuTO-lRLA, AuTO-sRLA).

use crate::setup;
use metis_abr::PensieveArch;
use metis_core::baselines::{surrogate_accuracy, surrogate_rmse, Lemna, Lime, Surrogate};
use metis_core::{ConversionConfig, ConversionPipeline, MultiRegressor};
use metis_flowsched::{
    generate_flows, lrla_agent, srla_decide, srla_net, srla_state, train_srla, FabricConfig,
    FlowSim, LrlaEnv, MlfqThresholds, SimConfig, SizeDistribution, SrlaTrainConfig,
};
use metis_rl::{Policy, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

/// A classification teacher dataset: states, output vectors, argmax labels.
struct ClsData {
    x: Vec<Vec<f64>>,
    y: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

struct TreeSurrogate(metis_core::TreePolicy);

impl Surrogate for TreeSurrogate {
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.0.action_probs(x)
    }
    fn predict_class(&self, x: &[f64]) -> usize {
        self.0.act_greedy(x)
    }
}

fn pensieve_data() -> (ClsData, metis_core::TreePolicy) {
    let s = setup::pensieve(42, PensieveArch::Original, 300);
    let cfg = ConversionConfig {
        max_leaf_nodes: 200,
        episodes_per_round: 12,
        max_steps: 512,
        dagger_rounds: 0,
        ..Default::default()
    };
    let pipeline = ConversionPipeline::new(&s.train_pool, &s.agent.policy, |_| 0.0)
        .conversion(cfg)
        .seed(9);
    let states = pipeline.collect_teacher_states(12, 512);
    let x: Vec<Vec<f64>> = states.iter().map(|st| st.obs.clone()).collect();
    let y: Vec<Vec<f64>> = x.iter().map(|xi| s.agent.policy.action_probs(xi)).collect();
    let labels: Vec<usize> = states.iter().map(|st| st.teacher_action).collect();
    let tree = pipeline.run();
    (ClsData { x, y, labels }, tree.policy)
}

fn lrla_data() -> (ClsData, metis_core::TreePolicy) {
    let mut rng = StdRng::seed_from_u64(21);
    let dist = SizeDistribution::web_search();
    let sim_cfg = SimConfig {
        fabric: FabricConfig {
            n_servers: 8,
            link_bps: 10e9,
        },
        thresholds: MlfqThresholds::default_web_search(),
        long_flow_cutoff_bytes: 1e6,
        decision_latency_s: 0.0,
    };
    let mut agent = lrla_agent(
        &[32],
        TrainConfig {
            episodes_per_epoch: 4,
            max_steps: 400,
            ..Default::default()
        },
        &mut rng,
    );
    let pool: Vec<LrlaEnv> = (0..3)
        .map(|i| {
            let mut wl_rng = StdRng::seed_from_u64(500 + i);
            LrlaEnv::new(
                generate_flows(&dist, 8, 10e9, 0.6, 0.03, &mut wl_rng),
                sim_cfg.clone(),
            )
        })
        .collect();
    for _ in 0..20 {
        agent.train_epoch(&pool, &mut rng);
    }
    let cfg = ConversionConfig {
        max_leaf_nodes: 2000,
        episodes_per_round: 6,
        max_steps: 400,
        dagger_rounds: 0,
        ..Default::default()
    };
    let pipeline = ConversionPipeline::new(&pool, &agent.policy, |_| 0.0)
        .conversion(cfg)
        .seed(21);
    let states = pipeline.collect_teacher_states(6, 400);
    let x: Vec<Vec<f64>> = states.iter().map(|st| st.obs.clone()).collect();
    let y: Vec<Vec<f64>> = x.iter().map(|xi| agent.policy.action_probs(xi)).collect();
    let labels: Vec<usize> = states.iter().map(|st| st.teacher_action).collect();
    let tree = pipeline.run();
    (ClsData { x, y, labels }, tree.policy)
}

/// sRLA is a regression teacher: (projected state, thresholds-as-log10).
/// The full 700-dim state makes the dense LIME/LEMNA solvers cubic-cost;
/// all three surrogates therefore share a 70-feature projection (the 10
/// most recent flows), recorded in EXPERIMENTS.md.
fn srla_data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>, MultiRegressor) {
    let mut rng = StdRng::seed_from_u64(33);
    let dist = SizeDistribution::web_search();
    let mut net = srla_net(&[32], &mut rng);
    let cfg = SrlaTrainConfig {
        iterations: 10,
        duration_s: 0.01,
        ..Default::default()
    };
    train_srla(&mut net, &dist, &cfg, &mut rng);

    let fabric = FabricConfig {
        n_servers: 8,
        link_bps: 10e9,
    };
    let mut x = Vec::new();
    let mut y = Vec::new();
    for seed in 0..60u64 {
        let mut wl_rng = StdRng::seed_from_u64(7000 + seed);
        let flows = generate_flows(&dist, 8, 10e9, 0.5, 0.008, &mut wl_rng);
        if flows.is_empty() {
            continue;
        }
        let mut sim = FlowSim::new(
            flows,
            SimConfig {
                fabric: fabric.clone(),
                thresholds: MlfqThresholds::default_web_search(),
                long_flow_cutoff_bytes: f64::INFINITY,
                decision_latency_s: 0.0,
            },
        );
        sim.run_mlfq_only();
        let full = srla_state(sim.completed(), &fabric);
        let thresholds = srla_decide(&net, &full);
        // Project: last 10 flows x 7 features.
        x.push(full[full.len() - 70..].to_vec());
        y.push(thresholds.as_slice().iter().map(|t| t.log10()).collect());
    }
    let tree = MultiRegressor::fit(&x, &y, 2000).expect("regression fit");
    (x, y, tree)
}

/// Figure 27: the full comparison grid.
pub fn fig27(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 27: Metis vs LIME vs LEMNA faithfulness ==="
    )?;
    let ks = [1usize, 2, 5, 10, 20, 50];

    // (a, b) Pensieve; (c, d) lRLA. Surrogates are fitted on the even
    // half of the samples and every method is scored on the odd half —
    // without the split, a 50-cluster LIME memorizes its evaluation data.
    for (name, (data, tree)) in [("Pensieve", pensieve_data()), ("AuTO-lRLA", lrla_data())] {
        let train_x: Vec<Vec<f64>> = data.x.iter().step_by(2).cloned().collect();
        let train_y: Vec<Vec<f64>> = data.y.iter().step_by(2).cloned().collect();
        let test_x: Vec<Vec<f64>> = data.x.iter().skip(1).step_by(2).cloned().collect();
        let test_y: Vec<Vec<f64>> = data.y.iter().skip(1).step_by(2).cloned().collect();
        let test_labels: Vec<usize> = data.labels.iter().skip(1).step_by(2).cloned().collect();
        let surrogate = TreeSurrogate(tree);
        let tree_acc = surrogate_accuracy(&surrogate, &test_x, &test_labels);
        let tree_rmse = surrogate_rmse(&surrogate, &test_x, &test_y);
        writeln!(
            out,
            "--- {name} ({} train / {} test samples) ---",
            train_x.len(),
            test_x.len()
        )?;
        writeln!(
            out,
            "Metis tree: accuracy {:.1}%  rmse {:.4} (cluster-independent)",
            tree_acc * 100.0,
            tree_rmse
        )?;
        writeln!(
            out,
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            "k", "lime_acc", "lime_rmse", "lemna_acc", "lemna_rmse"
        )?;
        for &k in &ks {
            let mut rng = StdRng::seed_from_u64(100 + k as u64);
            let lime = Lime::fit(&train_x, &train_y, k, &mut rng);
            let lemna = Lemna::fit(&train_x, &train_y, k, 2, &mut rng);
            writeln!(
                out,
                "{:>4} {:>9.1}% {:>10.4} {:>9.1}% {:>10.4}",
                k,
                surrogate_accuracy(&lime, &test_x, &test_labels) * 100.0,
                surrogate_rmse(&lime, &test_x, &test_y),
                surrogate_accuracy(&lemna, &test_x, &test_labels) * 100.0,
                surrogate_rmse(&lemna, &test_x, &test_y),
            )?;
        }
    }

    // (e) sRLA: RMSE only (real-valued outputs).
    let (x, y, tree) = srla_data();
    let train_x: Vec<Vec<f64>> = x.iter().step_by(2).cloned().collect();
    let train_y: Vec<Vec<f64>> = y.iter().step_by(2).cloned().collect();
    let test_x: Vec<Vec<f64>> = x.iter().skip(1).step_by(2).cloned().collect();
    let test_y: Vec<Vec<f64>> = y.iter().skip(1).step_by(2).cloned().collect();
    let tree_half = MultiRegressor::fit(&train_x, &train_y, 2000).expect("regression fit");
    writeln!(
        out,
        "--- AuTO-sRLA ({} train / {} test, log10-threshold outputs) ---",
        train_x.len(),
        test_x.len()
    )?;
    writeln!(
        out,
        "Metis trees: rmse {:.4}",
        tree_half.rmse(&test_x, &test_y)
    )?;
    let _ = tree;
    writeln!(out, "{:>4} {:>10} {:>10}", "k", "lime_rmse", "lemna_rmse")?;
    for &k in &[1usize, 2, 5, 10] {
        let mut rng = StdRng::seed_from_u64(200 + k as u64);
        let lime = Lime::fit(&train_x, &train_y, k, &mut rng);
        let lemna = Lemna::fit(&train_x, &train_y, k, 2, &mut rng);
        writeln!(
            out,
            "{:>4} {:>10.4} {:>10.4}",
            k,
            surrogate_rmse(&lime, &test_x, &test_y),
            surrogate_rmse(&lemna, &test_x, &test_y),
        )?;
    }
    writeln!(
        out,
        "(paper: the decision tree beats both baselines on accuracy and RMSE)"
    )?;
    Ok(())
}
