//! Figure 31 (Appendix G): offline computation overhead of the conversion
//! (tree extraction vs leaf count) and of the mask search.

use crate::setup;
use metis_abr::PensieveArch;
use metis_core::{convert_policy, ConversionConfig};
use metis_hypergraph::MaskConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;

/// Figure 31 + the "80 seconds on average" mask-search measurement.
pub fn fig31(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "=== Figure 31: offline computation overhead ===")?;
    let s = setup::pensieve(42, PensieveArch::Original, 200);
    let mut rng = StdRng::seed_from_u64(1);
    writeln!(out, "decision-tree extraction (Pensieve teacher):")?;
    writeln!(out, "{:>8} {:>12}", "leaves", "seconds")?;
    for leaves in [10, 100, 1000, 5000] {
        let cfg = ConversionConfig {
            max_leaf_nodes: leaves,
            episodes_per_round: 12,
            max_steps: 512,
            dagger_rounds: 0,
            ..Default::default()
        };
        let t0 = Instant::now();
        let _ = convert_policy(&s.train_pool, &s.agent.policy, |_| 0.0, &cfg, &mut rng);
        writeln!(out, "{:>8} {:>12.2}", leaves, t0.elapsed().as_secs_f64())?;
    }
    writeln!(
        out,
        "(paper: < 40 s at every setting, < 1 minute at 5000 leaves)"
    )?;

    let r = setup::routing(42, 15, 2, 30);
    let cfg = MaskConfig {
        steps: 300,
        ..Default::default()
    };
    let mut times = Vec::new();
    for (sample, routing) in r.samples.iter().zip(r.routings.iter()) {
        let system = metis_core::MaskedRouting::new(&r.model, &r.topo, &sample.demands, routing);
        let t0 = Instant::now();
        let _ = metis_hypergraph::optimize_mask(&system, &cfg);
        times.push(t0.elapsed().as_secs_f64());
    }
    writeln!(
        out,
        "hypergraph mask search (RouteNet*, {} steps): mean {:.1} s over {} samples",
        cfg.steps,
        metis_core::mean(&times),
        times.len()
    )?;
    writeln!(
        out,
        "(paper: 80 s on average; negligible vs hours-to-days of DNN training)"
    )?;
    Ok(())
}
