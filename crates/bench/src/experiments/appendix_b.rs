//! Appendix B: hypergraph formulations of the other Table-2 scenarios,
//! exercised end to end (formulate → toy policy → critical-connection
//! search over a linear utility surrogate).

use metis_core::formulate::{
    dag_hypergraph, greedy_placement, nfv_hypergraph, udn_hypergraph, JobDag, NfvProblem,
    UdnProblem,
};
use metis_hypergraph::{optimize_mask, Hypergraph, MaskConfig, MaskedSystem, OutputKind};
use metis_nn::tape::{sum, Tape, Var};
use rand::SeedableRng;
use std::io::Write;

/// A generic masked system over any hypergraph: the output is a weighted
/// sum of per-connection utilities (vertex feature × edge feature), so the
/// search surfaces the highest-utility connections. This is the simplest
/// system exercising the formulation end-to-end.
struct UtilitySystem {
    utilities: Vec<f64>,
}

impl UtilitySystem {
    fn from_hypergraph(h: &Hypergraph) -> Self {
        let utilities = h
            .connections()
            .iter()
            .map(|&(e, v)| {
                let fe = h
                    .edge_features
                    .get(e)
                    .and_then(|f| f.first())
                    .copied()
                    .unwrap_or(1.0);
                let fv = h
                    .vertex_features
                    .get(v)
                    .and_then(|f| f.first())
                    .copied()
                    .unwrap_or(1.0);
                fe * fv
            })
            .collect();
        UtilitySystem { utilities }
    }
}

impl MaskedSystem for UtilitySystem {
    fn n_connections(&self) -> usize {
        self.utilities.len()
    }
    fn reference_output(&self) -> Vec<f64> {
        vec![self.utilities.iter().sum()]
    }
    fn masked_output<'t>(&self, tape: &'t Tape, mask: &[Var<'t>]) -> Vec<Var<'t>> {
        let terms: Vec<Var<'t>> = mask
            .iter()
            .zip(self.utilities.iter())
            .map(|(m, &u)| *m * u)
            .collect();
        vec![sum(tape, &terms)]
    }
    fn output_kind(&self) -> OutputKind {
        OutputKind::Continuous
    }
}

fn interpret(out: &mut dyn Write, name: &str, h: &Hypergraph) -> std::io::Result<()> {
    writeln!(
        out,
        "{name}: |V|={} |E|={} connections={}",
        h.n_vertices(),
        h.n_edges(),
        h.n_connections()
    )?;
    let system = UtilitySystem::from_hypergraph(h);
    let cfg = MaskConfig {
        steps: 120,
        ..Default::default()
    };
    let result = optimize_mask(&system, &cfg);
    let conns = h.connections();
    writeln!(out, "  top critical connections (hyperedge, vertex, mask):")?;
    for &i in result.ranked().iter().take(3) {
        let (e, v) = conns[i];
        writeln!(
            out,
            "    {} @ {}  mask {:.3}",
            h.edge_name(e),
            h.vertex_name(v),
            result.mask[i]
        )?;
    }
    Ok(())
}

/// Appendix B scenarios end to end.
pub fn appendix_b(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "=== Appendix B: other hypergraph formulations ===")?;

    // B.1 NFV placement.
    let nfv = NfvProblem {
        server_capacity: vec![4.0, 4.0, 4.0, 4.0, 4.0, 4.0],
        nf_demand: vec![3.0, 2.0, 4.0, 1.0],
        instance_load: vec![1.0, 1.0, 1.0, 1.0],
    };
    let placement = greedy_placement(&nfv);
    let h = nfv_hypergraph(&nfv, &placement);
    interpret(out, "B.1 NFV placement", &h)?;

    // B.2 ultra-dense cellular.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let udn = UdnProblem::random(40, 10, 0.35, &mut rng);
    let h = udn_hypergraph(&udn);
    interpret(out, "B.2 ultra-dense cellular", &h)?;

    // B.3 cluster scheduling DAG.
    let dag = JobDag::new(
        vec![1.0, 2.0, 5.0, 1.0, 3.0, 2.0],
        vec![vec![], vec![0], vec![0], vec![1, 2], vec![2], vec![3, 4]],
    );
    let h = dag_hypergraph(&dag);
    interpret(out, "B.3 cluster scheduling", &h)?;
    let cp = dag.critical_path();
    writeln!(out, "  critical path lengths: {cp:?}")?;
    Ok(())
}
