//! One module per paper table/figure; `registry()` lists them all for the
//! `run_all` binary. Each experiment takes a writer so binaries can tee
//! output into `results/`.

pub mod appendix_b;
pub mod auto;
pub mod baseline_cmp;
pub mod global;
pub mod local;
pub mod overhead;

use std::io::Write;

/// Experiment function signature.
pub type Experiment = fn(&mut dyn Write) -> std::io::Result<()>;

/// Every reproducible table/figure, in paper order.
pub fn registry() -> Vec<(&'static str, Experiment)> {
    vec![
        ("fig07_pensieve_tree", local::fig07 as Experiment),
        ("table3_top_masks", global::table3),
        ("fig09_mask_stats", global::fig09),
        ("fig11_model_design", local::fig11),
        ("fig12_bitrate_freq", local::fig12),
        ("fig13_fixed_link", local::fig13),
        ("fig14_oversampling", local::fig14),
        ("fig15a_pensieve_qoe", local::fig15a),
        ("fig15b_auto_fct", auto::fig15b),
        ("fig16_latency_coverage", auto::fig16),
        ("fig17a_median_flows", auto::fig17a),
        ("fig17b_deployment_cost", auto::fig17b),
        ("fig18_adhoc", global::fig18),
        ("fig20_resampling", local::fig20),
        ("fig27_baseline_cmp", baseline_cmp::fig27),
        ("fig28_leaf_sensitivity", local::fig28),
        ("fig29_lambda_sensitivity", global::fig29),
        ("fig31_overhead", overhead::fig31),
        ("appendixB_formulations", appendix_b::appendix_b),
    ]
}
