//! AuTO-side experiments: Figures 15(b), 16, 17.

use metis_core::{ConversionConfig, ConversionPipeline};
use metis_flowsched::{
    coverage, decode_action, generate_flows, lrla_agent, lrla_net_paper_scale, lrla_state,
    srla_net_paper_scale, FabricConfig, FctStats, FlowDecision, FlowSim, LrlaEnv, MlfqThresholds,
    SimConfig, SizeDistribution, LRLA_STATE_DIM, SRLA_STATE_DIM,
};
use metis_rl::{Policy, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

fn sim_config(dist_name: &str) -> SimConfig {
    SimConfig {
        fabric: FabricConfig {
            n_servers: 8,
            link_bps: 10e9,
        },
        thresholds: if dist_name == "WS" {
            MlfqThresholds::default_web_search()
        } else {
            MlfqThresholds::default_data_mining()
        },
        long_flow_cutoff_bytes: 1e6,
        decision_latency_s: 0.0,
    }
}

fn workload(dist: &SizeDistribution, seed: u64) -> Vec<metis_flowsched::FlowRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_flows(dist, 8, 10e9, 0.6, 0.03, &mut rng)
}

/// Train a small lRLA teacher and convert it to a tree; return
/// (teacher policy, tree policy).
fn lrla_teacher_and_tree(
    dist: &SizeDistribution,
    dist_name: &str,
    seed: u64,
) -> (metis_rl::SoftmaxPolicy, metis_core::TreePolicy) {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = TrainConfig {
        episodes_per_epoch: 4,
        max_steps: 400,
        actor_lr: 3e-3,
        critic_lr: 5e-3,
        ..Default::default()
    };
    let mut agent = lrla_agent(&[32], config, &mut rng);
    let pool: Vec<LrlaEnv> = (0..3)
        .map(|i| LrlaEnv::new(workload(dist, seed ^ (i + 1)), sim_config(dist_name)))
        .collect();
    for _ in 0..25 {
        agent.train_epoch(&pool, &mut rng);
    }
    let cfg = ConversionConfig {
        max_leaf_nodes: 2000,
        episodes_per_round: 3,
        max_steps: 400,
        dagger_rounds: 1,
        ..Default::default()
    };
    // Critic-bootstrapped Eq.-1 weights through the batched value path.
    let tree = ConversionPipeline::with_value(&pool, &agent.policy, agent.value_estimate())
        .conversion(cfg)
        .seed(seed ^ 0xA07)
        .run();
    (agent.policy, tree.policy)
}

/// Run a workload where long flows are decided by `policy`.
fn fct_with_policy(
    flows: Vec<metis_flowsched::FlowRequest>,
    config: SimConfig,
    policy: &dyn Policy,
) -> Vec<metis_flowsched::CompletedFlow> {
    let link = config.fabric.link_bps;
    let mut sim = FlowSim::new(flows, config);
    sim.run_with(|sim, dp| {
        let obs = lrla_state(sim, dp.flow_id);
        decode_action(policy.act_greedy(&obs), link)
    });
    sim.completed().to_vec()
}

/// Figure 15(b): FCT of Metis+AuTO normalized by AuTO (avg and p99).
pub fn fig15b(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "=== Figure 15(b): performance maintenance (AuTO) ===")?;
    for (dist, name) in [
        (SizeDistribution::web_search(), "WS"),
        (SizeDistribution::data_mining(), "DM"),
    ] {
        let (teacher, tree) = lrla_teacher_and_tree(&dist, name, 42);
        let flows = workload(&dist, 0xEE);
        let auto =
            FctStats::from_flows(&fct_with_policy(flows.clone(), sim_config(name), &teacher));
        let metis = FctStats::from_flows(&fct_with_policy(flows, sim_config(name), &tree));
        writeln!(
            out,
            "{name}: AuTO avg {:.3}ms p99 {:.3}ms | Metis+AuTO avg {:.3}ms p99 {:.3}ms | norm avg {:.1}% p99 {:.1}%",
            auto.mean_s * 1e3,
            auto.p99_s * 1e3,
            metis.mean_s * 1e3,
            metis.p99_s * 1e3,
            metis.mean_s / auto.mean_s * 100.0,
            metis.p99_s / auto.p99_s * 100.0
        )?;
    }
    writeln!(
        out,
        "(paper: Metis+AuTO within 2% of AuTO on both workloads)"
    )?;
    Ok(())
}

/// Figure 16: (a) decision latency of the paper-scale DNNs vs the
/// converted trees; (b) per-flow decision coverage at those latencies.
pub fn fig16(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 16: decision latency and per-flow coverage ==="
    )?;
    let mut rng = StdRng::seed_from_u64(5);
    // (a) Paper-scale networks: sRLA 700->600->600->3, lRLA 143->600->600->108.
    let srla = srla_net_paper_scale(&mut rng);
    let lrla = lrla_net_paper_scale(&mut rng);
    let (_, tree) = lrla_teacher_and_tree(&SizeDistribution::web_search(), "WS", 42);
    let compiled = metis_dt::CompiledTree::compile(&tree.tree);

    let obs_s = vec![0.1; SRLA_STATE_DIM];
    let obs_l = vec![0.1; LRLA_STATE_DIM];
    let lat_srla = metis_core::measure_latency(
        || {
            std::hint::black_box(srla.predict(&obs_s));
        },
        300,
        20,
    );
    let lat_lrla = metis_core::measure_latency(
        || {
            std::hint::black_box(lrla.predict(&obs_l));
        },
        300,
        20,
    );
    let lat_tree = metis_core::measure_latency(
        || {
            std::hint::black_box(tree.tree.predict_class(&obs_l));
        },
        300,
        20,
    );
    let lat_compiled = metis_core::measure_latency(
        || {
            std::hint::black_box(compiled.predict_class(&obs_l));
        },
        300,
        20,
    );
    let dnn_mean = lat_srla.mean_s + lat_lrla.mean_s; // AuTO runs both agents
    writeln!(
        out,
        "(a) per-decision latency (in-process; paper numbers include the Python stack):"
    )?;
    writeln!(
        out,
        "  sRLA DNN (700-600-600-3):    {:>10.1} us",
        lat_srla.mean_s * 1e6
    )?;
    writeln!(
        out,
        "  lRLA DNN (143-600-600-108):  {:>10.1} us",
        lat_lrla.mean_s * 1e6
    )?;
    writeln!(
        out,
        "  Metis tree:                  {:>10.3} us",
        lat_tree.mean_s * 1e6
    )?;
    writeln!(
        out,
        "  Metis compiled tree:         {:>10.3} us (branch-only, SmartNIC analogue)",
        lat_compiled.mean_s * 1e6
    )?;
    writeln!(
        out,
        "  speedup (DNN pair / tree):   {:>10.1}x",
        dnn_mean / lat_tree.mean_s
    )?;

    // (b) Coverage under each latency: run the fabric once, then ask which
    // flows outlive each decision latency.
    writeln!(out, "(b) per-flow decision coverage:")?;
    for (dist, name) in [
        (SizeDistribution::web_search(), "Web Search"),
        (SizeDistribution::data_mining(), "Data Mining"),
    ] {
        let flows = workload(&dist, 0xC0FFEE);
        let mut sim = FlowSim::new(
            flows,
            sim_config(if name == "Web Search" { "WS" } else { "DM" }),
        );
        let done = sim.run_mlfq_only().to_vec();
        // Scale in-process latencies to the paper's regime (the ratio is
        // what transfers): AuTO reports 61.61 ms vs 2.30 ms.
        let paper_dnn = 0.06161;
        let paper_tree = 0.00230;
        let c_dnn = coverage(&done, paper_dnn);
        let c_tree = coverage(&done, paper_tree);
        writeln!(
            out,
            "  {name:<12} AuTO: {:.1}% flows {:.1}% bytes | Metis+AuTO: {:.1}% flows {:.1}% bytes",
            c_dnn.flow_fraction * 100.0,
            c_dnn.byte_fraction * 100.0,
            c_tree.flow_fraction * 100.0,
            c_tree.byte_fraction * 100.0
        )?;
    }
    writeln!(
        out,
        "(paper: 26.8x latency cut; +33% flows, +46% bytes covered on DM)"
    )?;
    Ok(())
}

/// Figure 17(a): letting the (fast) tree schedule median flows too.
pub fn fig17a(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 17(a): per-flow scheduling of median flows ==="
    )?;
    for (dist, name) in [
        (SizeDistribution::web_search(), "WS"),
        (SizeDistribution::data_mining(), "DM"),
    ] {
        let (_, tree) = lrla_teacher_and_tree(&dist, name, 42);
        let flows = workload(&dist, 0xAB);
        // AuTO: only long flows (>= 1 MB) get per-flow decisions, after the
        // DNN latency. Metis+AuTO: the tree's low latency lets flows down
        // to 100 KB ("median flows") be individually scheduled.
        let mut auto_cfg = sim_config(name);
        auto_cfg.decision_latency_s = 0.06161;
        let mut metis_cfg = sim_config(name);
        metis_cfg.long_flow_cutoff_bytes = 1e5;
        metis_cfg.decision_latency_s = 0.0023;

        let longify = |sim: &FlowSim, dp: &metis_flowsched::DecisionPoint| -> FlowDecision {
            let obs = lrla_state(sim, dp.flow_id);
            decode_action(tree.act_greedy(&obs), 10e9)
        };
        let mut sim_a = FlowSim::new(flows.clone(), auto_cfg);
        sim_a.run_with(|s, dp| longify(s, dp));
        let mut sim_m = FlowSim::new(flows, metis_cfg);
        sim_m.run_with(|s, dp| longify(s, dp));

        let band = |done: &[metis_flowsched::CompletedFlow], lo: f64, hi: f64| {
            FctStats::from_flows_sized(done, lo, hi)
        };
        writeln!(out, "--- {name} (FCT normalized by unmodified AuTO) ---")?;
        for (label, lo, hi) in [
            ("all flows", 0.0, f64::INFINITY),
            ("median flows (100KB-1MB)", 1e5, 1e6),
        ] {
            let a = band(sim_a.completed(), lo, hi);
            let m = band(sim_m.completed(), lo, hi);
            match (a, m) {
                (Some(a), Some(m)) => writeln!(
                    out,
                    "  {label:<26} avg {:.1}% p50 {:.1}% p90 {:.1}%",
                    m.mean_s / a.mean_s * 100.0,
                    m.p50_s / a.p50_s * 100.0,
                    m.p90_s / a.p90_s * 100.0
                )?,
                _ => writeln!(out, "  {label:<26} (no flows in band)")?,
            }
        }
    }
    writeln!(out, "(paper: avg improves 1.5-4.4%; median flows up to 8%)")?;
    Ok(())
}

/// Figure 17(b): deployment artifact costs — sizes, load time at
/// 1200 kbps, and memory proxy.
pub fn fig17b(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 17(b): artifact size and load-time cost model ==="
    )?;
    let setup = crate::setup::pensieve(42, metis_abr::PensieveArch::Original, 50);
    let tree = crate::setup::pensieve_tree(&setup, 7, &crate::setup::pensieve_conversion_config());
    let dnn_bytes = serde_json::to_vec(&setup.agent.policy.net)
        .map(|v| v.len())
        .unwrap_or(0);
    let tree_bytes = tree.policy.tree.artifact_bytes();
    let dnn = metis_core::ArtifactCost::new(dnn_bytes);
    let tr = metis_core::ArtifactCost::new(tree_bytes);
    writeln!(
        out,
        "{:<18} {:>12} {:>16}",
        "model", "bytes", "load @1200kbps"
    )?;
    writeln!(
        out,
        "{:<18} {:>12} {:>14.2} s",
        "Pensieve DNN",
        dnn_bytes,
        dnn.load_time_s(1200.0).expect("positive bandwidth")
    )?;
    writeln!(
        out,
        "{:<18} {:>12} {:>14.3} s",
        "Metis tree",
        tree_bytes,
        tr.load_time_s(1200.0).expect("positive bandwidth")
    )?;
    writeln!(
        out,
        "size ratio {:.0}x, load-time ratio {:.0}x",
        dnn_bytes as f64 / tree_bytes as f64,
        dnn.load_time_s(1200.0).expect("positive bandwidth")
            / tr.load_time_s(1200.0).expect("positive bandwidth")
    )?;
    writeln!(
        out,
        "(paper: +1370KB page, 9.36 s vs 60 ms added load; 156x)"
    )?;
    Ok(())
}
