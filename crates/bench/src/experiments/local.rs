//! Pensieve-side experiments: Figures 7, 11, 12, 13 (+24–26/Table 5), 14,
//! 15(a), 20 and 28.

use crate::setup::{
    self, action_frequencies, mean_qoe, pensieve_conversion_config, pensieve_tree, per_trace_qoe,
};
use metis_abr::{
    baseline_by_name, baseline_names, bitrate_labels, env_pool, pensieve_agent, train_pensieve,
    AbrEnv, NetworkTrace, PensieveArch, VideoModel,
};
use metis_core::{ConversionConfig, ConversionPipeline};
use metis_dt::{render, RenderOptions};
use metis_rl::{ActionMode, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::sync::Arc;

const TEACHER_EPOCHS: usize = 350;

/// Figure 7: top-4 layers of the Metis+Pensieve decision tree with
/// per-node bitrate decision frequencies.
pub fn fig07(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 7: top layers of the Metis+Pensieve decision tree ==="
    )?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    let result = pensieve_tree(&setup, 7, &pensieve_conversion_config());
    let mut tree = result.policy.tree.clone();
    tree.feature_names = Some(metis_abr::feature_names());
    let opts = RenderOptions {
        max_depth: Some(4),
        class_labels: Some(bitrate_labels()),
        show_frequencies: true,
    };
    writeln!(out, "{}", render(&tree, &opts))?;
    writeln!(
        out,
        "tree: {} leaves, depth {}",
        tree.n_leaves(),
        tree.depth()
    )?;
    let imp = tree.feature_importance();
    let names = metis_abr::feature_names();
    let mut ranked: Vec<(usize, f64)> = imp.iter().cloned().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    writeln!(
        out,
        "top feature importances (paper: r_t dominates the top splits):"
    )?;
    for (f, v) in ranked.iter().take(5) {
        writeln!(out, "  {:<28} {:.3}", names[*f], v)?;
    }
    writeln!(
        out,
        "teacher fidelity per round: {:?}",
        result.fidelity_history
    )?;
    Ok(())
}

/// Figure 11: original vs modified (last-bitrate skip) Pensieve DNN —
/// training curves and final test QoE.
pub fn fig11(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 11: guide for model design (skip-connection redesign) ==="
    )?;
    let video = Arc::new(VideoModel::pensieve_default(7));
    let train: Vec<Arc<NetworkTrace>> = metis_abr::hsdpa_corpus(12, 0xF11)
        .into_iter()
        .map(Arc::new)
        .collect();
    let test: Vec<Arc<NetworkTrace>> = metis_abr::hsdpa_corpus(20, 0xF12)
        .into_iter()
        .map(Arc::new)
        .collect();
    let train_pool = env_pool(&video, &train);
    let test_pool = env_pool(&video, &test);

    let epochs = 360;
    let checkpoints = 6;
    writeln!(out, "epoch, original_test_qoe, modified_test_qoe")?;
    let mut finals = Vec::new();
    let mut curves: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (ai, arch) in [PensieveArch::Original, PensieveArch::LastBitrateSkip]
        .into_iter()
        .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(11);
        let mut agent = pensieve_agent(arch, 32, &mut rng);
        for _ in 0..checkpoints {
            train_pensieve(&mut agent, &train_pool, epochs / checkpoints, &mut rng);
            curves[ai].push(mean_qoe(&test_pool, &agent.policy));
        }
        finals.push(mean_qoe(&test_pool, &agent.policy));
    }
    for (c, (orig, modif)) in curves[0].iter().zip(&curves[1]).enumerate() {
        writeln!(
            out,
            "{:>5}, {orig:+.4}, {modif:+.4}",
            (c + 1) * (epochs / checkpoints)
        )?;
    }
    let gain = (finals[1] - finals[0]) / finals[0].abs().max(1e-9) * 100.0;
    writeln!(
        out,
        "final test QoE: original {:.4}, modified {:.4} ({gain:+.1}%)",
        finals[0], finals[1]
    )?;
    writeln!(
        out,
        "(paper: modified structure improves test QoE by ~5.1%)"
    )?;
    Ok(())
}

/// Figure 12: bitrate-selection frequencies of all ABR algorithms on
/// HSDPA-like and FCC-like traces, plus the fixed-bandwidth sweep (12c).
pub fn fig12(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "=== Figure 12: bitrate selection frequencies ===")?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    let tree = pensieve_tree(&setup, 7, &pensieve_conversion_config());
    let labels = bitrate_labels();

    for (name, pool) in [
        ("HSDPA-like", &setup.test_pool_hsdpa),
        ("FCC-like", &setup.test_pool_fcc),
    ] {
        writeln!(out, "--- {name} traces ---")?;
        writeln!(out, "{:<16} {}", "algorithm", labels.join("  "))?;
        for b in baseline_names() {
            let policy = baseline_by_name(b);
            let f = action_frequencies(pool, policy.as_ref());
            writeln!(out, "{:<16} {}", b, fmt_freqs(&f))?;
        }
        let f_teacher = action_frequencies(pool, &setup.agent.policy);
        writeln!(out, "{:<16} {}", "Pensieve", fmt_freqs(&f_teacher))?;
        let f_tree = action_frequencies(pool, &tree.policy);
        writeln!(out, "{:<16} {}", "Metis+Pensieve", fmt_freqs(&f_tree))?;
        // The paper's observation: some median bitrates are rarely chosen.
        let rare: Vec<&str> = f_teacher
            .iter()
            .enumerate()
            .filter(|(_, &f)| f < 0.02)
            .map(|(i, _)| labels[i].as_str())
            .collect();
        writeln!(out, "rarely selected by Pensieve (<2%): {rare:?}")?;
    }

    writeln!(out, "--- (c) fixed-bandwidth sweep (Pensieve) ---")?;
    writeln!(out, "{:<10} {}", "bw(kbps)", labels.join("  "))?;
    let video = Arc::new(VideoModel::long_debug_video(7));
    for bw in [300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0] {
        let trace = Arc::new(NetworkTrace::fixed(bw, 1200.0));
        let pool = vec![AbrEnv::new(video.clone(), trace, 0.0)];
        let f = action_frequencies(&pool, &setup.agent.policy);
        writeln!(out, "{:<10} {}", bw as u64, fmt_freqs(&f))?;
    }
    Ok(())
}

fn fmt_freqs(f: &[f64]) -> String {
    f.iter()
        .map(|x| format!("{:>7.1}%", x * 100.0))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Figure 13 (+ Figures 24–26, Table 5): fixed-link behaviour at 3000 and
/// 1300 kbps — bitrate time series, buffer, QoE table.
pub fn fig13(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 13 / 24-26 / Table 5: fixed-link deep dive ==="
    )?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    let tree = pensieve_tree(&setup, 7, &pensieve_conversion_config());
    let video = Arc::new(VideoModel::long_debug_video(7));

    for bw in [3000.0, 1300.0] {
        writeln!(out, "--- fixed {bw} kbps link (1000 s video) ---")?;
        let trace = Arc::new(NetworkTrace::fixed(bw, 1500.0));
        let env = AbrEnv::new(video.clone(), trace, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        writeln!(
            out,
            "{:<16} {:>9} {:>10} {:>9}",
            "algorithm", "mean QoE", "switches", "dominant"
        )?;
        let mut run = |name: &str, policy: &dyn Policy| -> std::io::Result<()> {
            let mut e = env.clone();
            let traj = metis_rl::rollout(&mut e, policy, ActionMode::Greedy, 1000, &mut rng);
            let qoe = traj.total_reward() / traj.len() as f64;
            let switches = traj.actions.windows(2).filter(|w| w[0] != w[1]).count();
            let mut counts = [0usize; 6];
            for &a in &traj.actions {
                counts[a] += 1;
            }
            let dom = (0..6).max_by_key(|&i| counts[i]).unwrap();
            writeln!(
                out,
                "{:<16} {:>9.4} {:>10} {:>9}",
                name,
                qoe,
                switches,
                bitrate_labels()[dom]
            )
        };
        for b in ["BB", "RB", "rMPC"] {
            run(b, baseline_by_name(b).as_ref())?;
        }
        run("Pensieve", &setup.agent.policy)?;
        run("Metis+P", &tree.policy)?;
        // The paper's diagnosis: Pensieve's action probabilities lack
        // confidence on fixed links (Figure 25).
        let mut e = env.clone();
        let obs0 = metis_rl::Env::reset(&mut e);
        let mut obs = obs0;
        for _ in 0..12 {
            let a = setup.agent.policy.act_greedy(&obs);
            obs = metis_rl::Env::step(&mut e, a).obs;
        }
        let probs = setup.agent.policy.action_probs(&obs);
        let max_p = probs.iter().cloned().fold(0.0, f64::max);
        writeln!(
            out,
            "Pensieve max action probability mid-stream: {:.3}",
            max_p
        )?;
    }
    writeln!(
        out,
        "(paper: baselines converge; Pensieve/Metis+P oscillate with low confidence)"
    )?;
    Ok(())
}

/// Figure 14: oversampling the missing bitrates (Metis+Pensieve-O).
pub fn fig14(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 14: debugging by oversampling (Metis+Pensieve-O) ==="
    )?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    let base_cfg = pensieve_conversion_config();
    let over_cfg = ConversionConfig {
        oversample_min_frac: Some(0.01),
        ..base_cfg.clone()
    };
    let plain = pensieve_tree(&setup, 7, &base_cfg);
    let over = pensieve_tree(&setup, 7, &over_cfg);

    for (name, pool) in [
        ("HSDPA-like", &setup.test_pool_hsdpa),
        ("FCC-like", &setup.test_pool_fcc),
    ] {
        let q_teacher = per_trace_qoe(pool, &setup.agent.policy);
        let q_plain = per_trace_qoe(pool, &plain.policy);
        let q_over = per_trace_qoe(pool, &over.policy);
        let norm = |q: &[f64]| {
            let pairs: Vec<f64> = q
                .iter()
                .zip(q_teacher.iter())
                .map(|(a, t)| if t.abs() > 1e-9 { a / t } else { 1.0 })
                .collect();
            (
                metis_abr::percentile(&pairs, 25.0),
                metis_core::mean(&pairs),
                metis_abr::percentile(&pairs, 75.0),
            )
        };
        writeln!(
            out,
            "--- {name} (QoE normalized by Pensieve; p25 / mean / p75) ---"
        )?;
        let (a, b, c) = norm(&q_plain);
        writeln!(out, "Metis+Pensieve   {:.3} / {:.3} / {:.3}", a, b, c)?;
        let (a, b, c) = norm(&q_over);
        writeln!(out, "Metis+Pensieve-O {:.3} / {:.3} / {:.3}", a, b, c)?;
    }
    writeln!(
        out,
        "(paper: oversampling improves avg QoE ~1%, p75 up to 4% on HSDPA)"
    )?;
    Ok(())
}

/// Figure 15(a): QoE parity of the converted tree with the teacher, both
/// against the heuristic baselines.
pub fn fig15a(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 15(a): performance maintenance (Pensieve) ==="
    )?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    let tree = pensieve_tree(&setup, 7, &pensieve_conversion_config());
    for (name, pool) in [
        ("HSDPA-like", &setup.test_pool_hsdpa),
        ("FCC-like", &setup.test_pool_fcc),
    ] {
        writeln!(out, "--- {name} ---")?;
        for b in baseline_names() {
            let policy = baseline_by_name(b);
            writeln!(
                out,
                "{:<16} mean QoE {:+.4}",
                b,
                mean_qoe(pool, policy.as_ref())
            )?;
        }
        let q_dnn = mean_qoe(pool, &setup.agent.policy);
        let q_tree = mean_qoe(pool, &tree.policy);
        writeln!(out, "{:<16} mean QoE {:+.4}", "Pensieve", q_dnn)?;
        writeln!(
            out,
            "{:<16} mean QoE {:+.4}  (delta vs DNN: {:+.2}%)",
            "Metis+Pensieve",
            q_tree,
            (q_tree - q_dnn) / q_dnn.abs().max(1e-9) * 100.0
        )?;
    }
    writeln!(out, "(paper: |delta| < 0.6% on both trace sets)")?;
    Ok(())
}

/// Figure 20 (Appendix A): QoE improvement CDF of the Eq.-1 resampling.
pub fn fig20(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 20: effect of the Eq.-1 resampling step ==="
    )?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    let with_cfg = pensieve_conversion_config();
    let without_cfg = ConversionConfig {
        resample: false,
        ..with_cfg.clone()
    };
    let with = pensieve_tree(&setup, 7, &with_cfg);
    let without = pensieve_tree(&setup, 7, &without_cfg);
    let pool: Vec<AbrEnv> = setup
        .test_pool_hsdpa
        .iter()
        .chain(setup.test_pool_fcc.iter())
        .cloned()
        .collect();
    let q_with = per_trace_qoe(&pool, &with.policy);
    let q_without = per_trace_qoe(&pool, &without.policy);
    let improvements: Vec<f64> = q_with
        .iter()
        .zip(q_without.iter())
        .map(|(a, b)| (a - b) / b.abs().max(1e-9) * 100.0)
        .collect();
    let improved = improvements.iter().filter(|&&x| x > 0.0).count();
    let mut sorted = improvements.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    writeln!(
        out,
        "traces improved by resampling: {}/{} ({:.0}%)",
        improved,
        improvements.len(),
        improved as f64 / improvements.len() as f64 * 100.0
    )?;
    writeln!(
        out,
        "median improvement: {:+.2}%",
        metis_abr::percentile(&sorted, 50.0)
    )?;
    writeln!(out, "improvement CDF (p10/p25/p50/p75/p90):")?;
    for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
        writeln!(
            out,
            "  p{:<3} {:+.2}%",
            p as u32,
            metis_abr::percentile(&sorted, p)
        )?;
    }
    writeln!(out, "(paper: ~73% of traces improve, median +1.5%)")?;
    Ok(())
}

/// Figure 28 (Appendix F.1): sensitivity to the number of leaf nodes.
pub fn fig28(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "=== Figure 28: leaf-count sensitivity (accuracy/RMSE vs leaves) ==="
    )?;
    let setup = setup::pensieve(42, PensieveArch::Original, TEACHER_EPOCHS);
    // Fixed evaluation dataset: teacher-labelled states out of the
    // pipeline's collection stage.
    let states = ConversionPipeline::new(&setup.train_pool, &setup.agent.policy, |_| 0.0)
        .seed(3)
        .collect_teacher_states(12, 512);
    writeln!(
        out,
        "{:>7} {:>10} {:>12} {:>10}",
        "leaves", "accuracy", "ccp_acc", "depth"
    )?;
    for leaves in [10, 20, 50, 100, 200, 500, 1000, 5000] {
        let cfg = ConversionConfig {
            max_leaf_nodes: leaves,
            episodes_per_round: 12,
            max_steps: 512,
            dagger_rounds: 0,
            ..Default::default()
        };
        let result = ConversionPipeline::new(&setup.train_pool, &setup.agent.policy, |_| 0.0)
            .conversion(cfg)
            .seed(3 ^ leaves as u64)
            .run();
        let acc = states
            .iter()
            .filter(|s| result.policy.act_greedy(&s.obs) == s.teacher_action)
            .count() as f64
            / states.len() as f64;
        // Ablation: depth truncation to a comparable leaf count.
        let trunc =
            metis_dt::truncate_depth(&result.policy.tree, (leaves as f64).log2().ceil() as usize);
        let trunc_acc = states
            .iter()
            .filter(|s| trunc.predict_class(&s.obs) == s.teacher_action)
            .count() as f64
            / states.len() as f64;
        writeln!(
            out,
            "{:>7} {:>9.1}% {:>11.1}% {:>10}",
            leaves,
            acc * 100.0,
            trunc_acc * 100.0,
            result.policy.tree.depth()
        )?;
    }
    writeln!(
        out,
        "(paper: a wide range of leaf settings performs within ~10%)"
    )?;
    Ok(())
}
