//! Shared experiment setup: trained teachers and evaluation corpora.
//!
//! Training budgets are deliberately laptop-scale (DESIGN.md §1.3,
//! substitution 6): every teacher is "finetuned enough" to exhibit the
//! paper's qualitative behaviours, which is what the interpretation
//! experiments consume.

use metis_abr::{
    env_pool, fcc_corpus, hsdpa_corpus, pensieve_agent, train_pensieve, AbrEnv, NetworkTrace,
    PensieveArch, PensieveNet, VideoModel,
};
use metis_core::{ConversionConfig, ConversionPipeline, ConversionResult};
use metis_rl::{ActorCritic, Policy};
use metis_routing::{
    demand_corpus, optimize_routing, DemandSample, LatencyModel, RouteNetModel, Routing, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A trained Pensieve teacher plus its train/test environment pools.
pub struct PensieveSetup {
    pub agent: ActorCritic<PensieveNet>,
    pub video: Arc<VideoModel>,
    pub train_pool: Vec<AbrEnv>,
    pub test_pool_hsdpa: Vec<AbrEnv>,
    pub test_pool_fcc: Vec<AbrEnv>,
}

/// Train a Pensieve teacher (hidden width 32, HSDPA-like traces).
pub fn pensieve(seed: u64, arch: PensieveArch, epochs: usize) -> PensieveSetup {
    let mut rng = StdRng::seed_from_u64(seed);
    let video = Arc::new(VideoModel::pensieve_default(7));
    let train: Vec<Arc<NetworkTrace>> = hsdpa_corpus(12, seed ^ 0xABCD)
        .into_iter()
        .map(Arc::new)
        .collect();
    let test_h: Vec<Arc<NetworkTrace>> = hsdpa_corpus(25, seed ^ 0x1111)
        .into_iter()
        .map(Arc::new)
        .collect();
    let test_f: Vec<Arc<NetworkTrace>> = fcc_corpus(25, seed ^ 0x2222)
        .into_iter()
        .map(Arc::new)
        .collect();
    let train_pool = env_pool(&video, &train);
    let mut agent = pensieve_agent(arch, 32, &mut rng);
    train_pensieve(&mut agent, &train_pool, epochs, &mut rng);
    PensieveSetup {
        agent,
        video: video.clone(),
        train_pool,
        test_pool_hsdpa: env_pool(&video, &test_h),
        test_pool_fcc: env_pool(&video, &test_f),
    }
}

/// Convert the teacher to a tree with paper defaults (M = 200) through
/// the unified engine (critic-bootstrapped Eq.-1 weights, all cores).
pub fn pensieve_tree(setup: &PensieveSetup, seed: u64, cfg: &ConversionConfig) -> ConversionResult {
    ConversionPipeline::with_value(
        &setup.train_pool,
        &setup.agent.policy,
        setup.agent.value_estimate(),
    )
    .conversion(cfg.clone())
    .seed(seed)
    .run()
}

/// Default Pensieve conversion config (Table 4).
pub fn pensieve_conversion_config() -> ConversionConfig {
    ConversionConfig {
        max_leaf_nodes: 200,
        episodes_per_round: 36,
        max_steps: 512,
        dagger_rounds: 3,
        ..Default::default()
    }
}

/// Mean QoE of a policy over an environment pool (greedy, one episode per
/// env), normalized per chunk.
pub fn mean_qoe(pool: &[AbrEnv], policy: &(impl Policy + Sync + ?Sized)) -> f64 {
    let per: Vec<f64> = per_trace_qoe(pool, policy);
    per.iter().sum::<f64>() / per.len() as f64
}

/// Per-trace mean chunk QoE, evaluated through the engine's parallel
/// pool evaluator (greedy rollouts; env-ordered, thread-count invariant).
pub fn per_trace_qoe(pool: &[AbrEnv], policy: &(impl Policy + Sync + ?Sized)) -> Vec<f64> {
    metis_rl::evaluate_pool(pool, policy, 1000, 0, 0)
        .into_iter()
        .map(|s| s.total_reward / s.steps.max(1) as f64)
        .collect()
}

/// Bitrate-selection frequency of a policy over a pool (fraction per rung).
pub fn action_frequencies(pool: &[AbrEnv], policy: &(impl Policy + ?Sized)) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut counts = [0usize; 6];
    let mut total = 0usize;
    for env in pool {
        let mut e = env.clone();
        let traj = metis_rl::rollout(&mut e, policy, metis_rl::ActionMode::Greedy, 1000, &mut rng);
        for &a in &traj.actions {
            counts[a] += 1;
            total += 1;
        }
    }
    counts
        .iter()
        .map(|&c| c as f64 / total.max(1) as f64)
        .collect()
}

/// A trained RouteNet* stack: topology, queueing ground truth, trained
/// message-passing model, demand corpus, and per-sample optimized routings.
pub struct RoutingSetup {
    pub topo: Topology,
    pub latency: LatencyModel,
    pub model: RouteNetModel,
    pub samples: Vec<DemandSample>,
    pub routings: Vec<Routing>,
}

/// Build and train the RouteNet* stack on NSFNet.
pub fn routing(seed: u64, n_demands: usize, n_samples: usize, train_epochs: usize) -> RoutingSetup {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let mut rng = StdRng::seed_from_u64(seed);
    // Training corpus: random candidate routings labelled by ground truth.
    let train_samples = demand_corpus(14, n_demands, 6, seed ^ 0x77);
    let mut train_data = Vec::new();
    for s in &train_samples {
        let routing: Routing = s
            .demands
            .iter()
            .map(|d| {
                let cands = metis_routing::candidate_paths(&topo, d.src, d.dst);
                cands[rng.gen_range(0..cands.len())].clone()
            })
            .collect();
        let truth = latency.path_latencies(&topo, &s.demands, &routing);
        train_data.push((s.demands.clone(), routing, truth));
    }
    let mut model = RouteNetModel::new(6, &mut rng);
    model.train(&topo, &train_data, train_epochs, 0.01);

    // Evaluation corpus with closed-loop optimized routings (ground-truth
    // optimizer, matching "routing results generated by RouteNet").
    let samples = demand_corpus(14, n_demands, n_samples, seed ^ 0x99);
    let routings: Vec<Routing> = samples
        .iter()
        .map(|s| optimize_routing(&topo, &s.demands, &latency, 1))
        .collect();
    RoutingSetup {
        topo,
        latency,
        model,
        samples,
        routings,
    }
}

/// Output directory for experiment artifacts.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("METIS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    );
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}
