//! # metis-bench — experiment harnesses for every paper table and figure
//!
//! Each module in [`experiments`] regenerates one result of the paper's
//! evaluation section (see DESIGN.md §3 for the full index). The binaries
//! in `src/bin/` are thin wrappers; `run_all` executes the complete suite
//! and tees every experiment's output into `results/`.
//!
//! Absolute numbers are simulator-scale, not testbed-scale; what is
//! expected to reproduce is the *shape* of each result (who wins, by
//! roughly what factor, which qualitative behaviours appear) — recorded
//! experiment-by-experiment in EXPERIMENTS.md.

pub mod experiments;
pub mod guard;
pub mod measure;
pub mod setup;

use std::io::Write;

/// Run one experiment, teeing output to stdout and `results/<name>.txt`.
pub fn run_and_tee(name: &str, f: experiments::Experiment) -> std::io::Result<()> {
    let mut buf = Vec::new();
    f(&mut buf)?;
    std::io::stdout().write_all(&buf)?;
    let path = setup::results_dir().join(format!("{name}.txt"));
    std::fs::write(path, &buf)?;
    Ok(())
}

/// Run one experiment by registry name (used by the thin binaries).
pub fn run_by_name(name: &str) -> std::io::Result<()> {
    let reg = experiments::registry();
    let (n, f) = reg
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown experiment {name}"));
    run_and_tee(n, *f)
}
