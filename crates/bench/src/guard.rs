//! Library core of the `bench_guard` CI regression gate: compare the
//! `per_sec` throughput metrics of freshly produced `BENCH_*.json`
//! artifacts against committed baselines.
//!
//! The contract (pinned by the unit tests below):
//!
//! * every `per_sec` metric in a **baseline** artifact must exist, be
//!   numeric, and be within the allowed regression in the current
//!   artifact — a renamed or dropped metric is a hard failure with a
//!   clear message, never a silent skip;
//! * a baseline artifact containing **zero** `per_sec` metrics fails
//!   (that is what a schema rename looks like from the gate's seat);
//! * metrics present only in the **current** artifact are ignored, so
//!   adding metrics never breaks the guard;
//! * non-finite values (either side) fail — they carry no regression
//!   information, and the offline serde shim decodes `null` as NaN, so a
//!   metric that decayed to `null` would otherwise escape;
//! * every `overhead_pct` metric in the **current** artifact is gated
//!   against the absolute ceiling [`OVERHEAD_CEILING_PCT`] — overheads
//!   are budgets, not throughputs, so a drifting baseline must never
//!   ratchet the allowance upward. Baseline `overhead_pct` metrics must
//!   still have a current counterpart (rename detection).

use serde::Value;

/// Absolute ceiling (in percent) for every `overhead_pct` metric:
/// instrumenting the serving path must cost less than this, no matter
/// what any baseline artifact recorded.
pub const OVERHEAD_CEILING_PCT: f64 = 5.0;

/// Outcome of comparing one artifact pair (or a whole directory sweep).
#[derive(Debug, Default)]
pub struct GuardOutcome {
    /// Metrics compared against their baseline.
    pub compared: usize,
    /// Human-readable failure messages (empty = gate passes).
    pub failures: Vec<String>,
    /// Per-metric comparison lines for the CI log.
    pub log: Vec<String>,
}

impl GuardOutcome {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn merge(&mut self, other: GuardOutcome) {
        self.compared += other.compared;
        self.failures.extend(other.failures);
        self.log.extend(other.log);
    }
}

/// Extract every `per_sec` metric of a JSON artifact. Non-numeric or
/// non-finite `per_sec` fields are an error, not a silent drop — a
/// metric that decayed to `null`/string/NaN must not escape the gate
/// (the offline serde shim reads `null` as NaN, so finiteness is the
/// load-bearing check).
fn keyed_metrics(text: &str, origin: &str, needle: &str) -> Result<Vec<(String, f64)>, String> {
    let value: Value = serde_json::from_str(text).map_err(|e| format!("{origin}: {e}"))?;
    let object = value
        .as_object()
        .ok_or_else(|| format!("{origin}: not a JSON object"))?;
    let mut out = Vec::new();
    for (key, val) in object.iter().filter(|(k, _)| k.contains(needle)) {
        match val.as_f64() {
            Some(x) if x.is_finite() => out.push((key.clone(), x)),
            _ => return Err(format!("{origin}: field `{key}` is not a finite number")),
        }
    }
    Ok(out)
}

fn per_sec_metrics(text: &str, origin: &str) -> Result<Vec<(String, f64)>, String> {
    keyed_metrics(text, origin, "per_sec")
}

/// Compare one baseline/current artifact pair. `name` labels messages
/// (typically the file name); `max_regress` is the allowed fractional
/// throughput drop (0.20 = 20%).
pub fn compare_artifacts(
    name: &str,
    baseline_text: &str,
    current_text: &str,
    max_regress: f64,
) -> GuardOutcome {
    let mut outcome = GuardOutcome::default();
    let baseline = match per_sec_metrics(baseline_text, &format!("{name} (baseline)")) {
        Ok(b) => b,
        Err(e) => {
            outcome.failures.push(e);
            return outcome;
        }
    };
    if baseline.is_empty() {
        outcome.failures.push(format!(
            "{name}: baseline contains no per_sec metrics — schema renamed without updating the guard?"
        ));
        return outcome;
    }
    let current = match per_sec_metrics(current_text, &format!("{name} (current)")) {
        Ok(c) => c,
        Err(e) => {
            outcome.failures.push(e);
            return outcome;
        }
    };
    for (field, old) in &baseline {
        let Some((_, new)) = current.iter().find(|(k, _)| k == field) else {
            outcome.failures.push(format!(
                "{name}: baseline metric `{field}` has no counterpart in the current run \
                 (renamed or dropped?)"
            ));
            continue;
        };
        outcome.compared += 1;
        let floor = old * (1.0 - max_regress);
        let delta = (new - old) / old.max(1e-12) * 100.0;
        // `per_sec_metrics` guarantees both sides finite, so this
        // comparison can never be vacuously true.
        let ok = *new >= floor;
        outcome.log.push(format!(
            "{} {name}:{field}: {old:.0} -> {new:.0} ({delta:+.1}%)",
            if ok { "ok  " } else { "FAIL" },
        ));
        if !ok {
            outcome.failures.push(format!(
                "{name}: `{field}` regressed {delta:+.1}% (floor {floor:.0})"
            ));
        }
    }
    gate_overheads(name, baseline_text, current_text, &mut outcome);
    outcome
}

/// Gate every `overhead_pct` metric of the current artifact against the
/// absolute [`OVERHEAD_CEILING_PCT`] ceiling, and fail any baseline
/// `overhead_pct` metric that lost its current counterpart. Artifacts
/// with no such metrics pass untouched (the `per_sec` contract already
/// rejects empty baselines).
fn gate_overheads(name: &str, baseline_text: &str, current_text: &str, outcome: &mut GuardOutcome) {
    let baseline = match keyed_metrics(baseline_text, &format!("{name} (baseline)"), "overhead_pct")
    {
        Ok(b) => b,
        Err(e) => {
            outcome.failures.push(e);
            return;
        }
    };
    let current = match keyed_metrics(current_text, &format!("{name} (current)"), "overhead_pct") {
        Ok(c) => c,
        Err(e) => {
            outcome.failures.push(e);
            return;
        }
    };
    for (field, _) in &baseline {
        if !current.iter().any(|(k, _)| k == field) {
            outcome.failures.push(format!(
                "{name}: baseline metric `{field}` has no counterpart in the current run \
                 (renamed or dropped?)"
            ));
        }
    }
    for (field, pct) in &current {
        outcome.compared += 1;
        let ok = *pct <= OVERHEAD_CEILING_PCT;
        outcome.log.push(format!(
            "{} {name}:{field}: {pct:.2}% (ceiling {OVERHEAD_CEILING_PCT:.1}%)",
            if ok { "ok  " } else { "FAIL" },
        ));
        if !ok {
            outcome.failures.push(format!(
                "{name}: `{field}` at {pct:.2}% exceeds the {OVERHEAD_CEILING_PCT:.1}% ceiling"
            ));
        }
    }
}

/// Compare every `BENCH_*.json` artifact of `baseline_dir` against its
/// counterpart in `current_dir`. Zero baselines, an unreadable
/// counterpart, or zero compared metrics overall all fail.
pub fn compare_dirs(baseline_dir: &str, current_dir: &str, max_regress: f64) -> GuardOutcome {
    let mut outcome = GuardOutcome::default();
    let mut baselines: Vec<_> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("BENCH_") && name.ends_with(".json")
            })
            .map(|e| e.path())
            .collect(),
        Err(e) => {
            outcome
                .failures
                .push(format!("baseline dir {baseline_dir}: {e}"));
            return outcome;
        }
    };
    baselines.sort();
    if baselines.is_empty() {
        outcome
            .failures
            .push(format!("no BENCH_*.json baselines in {baseline_dir}"));
        return outcome;
    }
    for baseline_path in &baselines {
        let name = baseline_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .to_string();
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                outcome.failures.push(format!("{name} (baseline): {e}"));
                continue;
            }
        };
        let current_path = std::path::Path::new(current_dir).join(&name);
        let current_text = match std::fs::read_to_string(&current_path) {
            Ok(t) => t,
            Err(e) => {
                outcome.failures.push(format!(
                    "{name}: current artifact missing/unreadable ({}): {e}",
                    current_path.display()
                ));
                continue;
            }
        };
        outcome.merge(compare_artifacts(
            &name,
            &baseline_text,
            &current_text,
            max_regress,
        ));
    }
    if outcome.compared == 0 && outcome.ok() {
        outcome
            .failures
            .push("no per_sec metrics compared — gate is vacuous".to_string());
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: f64 = 0.20;

    #[test]
    fn within_tolerance_passes_and_logs() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0, "cores": 4}"#,
            r#"{"a_per_sec": 85.0, "cores": 4}"#,
            MAX,
        );
        assert!(outcome.ok(), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.compared, 1);
        assert_eq!(outcome.log.len(), 1);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0}"#,
            r#"{"a_per_sec": 79.0}"#,
            MAX,
        );
        assert!(!outcome.ok());
        assert!(outcome.failures[0].contains("regressed"));
    }

    /// The regression-gate escape this PR closes: a baseline metric with
    /// no counterpart in the current artifact (renamed or dropped) must
    /// fail loudly, not be skipped.
    #[test]
    fn dropped_or_renamed_metric_fails_with_clear_message() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0, "b_per_sec": 50.0}"#,
            r#"{"a_per_sec": 100.0, "b_renamed_per_sec": 50.0}"#,
            MAX,
        );
        assert!(!outcome.ok());
        assert_eq!(outcome.compared, 1, "surviving metric still compared");
        assert!(
            outcome.failures[0].contains("`b_per_sec`")
                && outcome.failures[0].contains("no counterpart"),
            "message unclear: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn new_current_only_metrics_are_ignored() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0}"#,
            r#"{"a_per_sec": 100.0, "brand_new_per_sec": 1.0}"#,
            MAX,
        );
        assert!(outcome.ok(), "adding metrics must never break the guard");
        assert_eq!(outcome.compared, 1);
    }

    #[test]
    fn baseline_without_per_sec_metrics_fails() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"throughput": 100.0}"#,
            r#"{"throughput": 100.0}"#,
            MAX,
        );
        assert!(!outcome.ok(), "a schema rename must not pass vacuously");
        assert!(outcome.failures[0].contains("no per_sec metrics"));
    }

    #[test]
    fn non_numeric_metric_fails_instead_of_silently_dropping() {
        let bad_current = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0}"#,
            r#"{"a_per_sec": null}"#,
            MAX,
        );
        assert!(!bad_current.ok());
        assert!(bad_current.failures[0].contains("not a finite number"));
        let bad_baseline = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": "fast"}"#,
            r#"{"a_per_sec": 100.0}"#,
            MAX,
        );
        assert!(!bad_baseline.ok());
    }

    /// `overhead_pct` metrics are budgets gated against an absolute
    /// ceiling: the current value decides, never the baseline — a
    /// baseline that drifted to 4.9% must not relax the gate.
    #[test]
    fn overhead_within_ceiling_passes_and_is_logged() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": 4.9}"#,
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": 3.2}"#,
            MAX,
        );
        assert!(outcome.ok(), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.compared, 2, "per_sec + overhead both gated");
        assert!(outcome.log.iter().any(|l| l.contains("ceiling")));
    }

    #[test]
    fn overhead_beyond_ceiling_fails_regardless_of_baseline() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            // Baseline already over the ceiling: must not grandfather it.
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": 9.0}"#,
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": 8.5}"#,
            MAX,
        );
        assert!(!outcome.ok());
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("telemetry_overhead_pct") && f.contains("ceiling")));
    }

    #[test]
    fn overhead_metric_dropped_from_current_fails() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": 1.0}"#,
            r#"{"a_per_sec": 100.0}"#,
            MAX,
        );
        assert!(!outcome.ok());
        assert!(outcome.failures[0].contains("no counterpart"));
    }

    #[test]
    fn overhead_decayed_to_null_fails() {
        let outcome = compare_artifacts(
            "BENCH_x.json",
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": 1.0}"#,
            r#"{"a_per_sec": 100.0, "telemetry_overhead_pct": null}"#,
            MAX,
        );
        assert!(!outcome.ok());
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("not a finite number")));
    }

    #[test]
    fn malformed_json_fails() {
        let outcome = compare_artifacts("BENCH_x.json", r#"{"a_per_sec": 100.0}"#, "not json", MAX);
        assert!(!outcome.ok());
    }

    #[test]
    fn directory_sweep_catches_missing_current_artifact() {
        let dir = std::env::temp_dir().join(format!("metis_guard_test_{}", std::process::id()));
        let base = dir.join("base");
        let cur = dir.join("cur");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cur).unwrap();
        std::fs::write(base.join("BENCH_a.json"), r#"{"x_per_sec": 10.0}"#).unwrap();
        std::fs::write(base.join("BENCH_b.json"), r#"{"y_per_sec": 10.0}"#).unwrap();
        std::fs::write(cur.join("BENCH_a.json"), r#"{"x_per_sec": 10.0}"#).unwrap();
        // BENCH_b.json has no current counterpart at all.
        let outcome = compare_dirs(base.to_str().unwrap(), cur.to_str().unwrap(), MAX);
        assert!(!outcome.ok());
        assert_eq!(outcome.compared, 1);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("BENCH_b.json") && f.contains("missing")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
