//! Shared throughput-measurement helpers for the criterion benches.
//!
//! Every gated `per_sec` metric in `BENCH_*.json` is summarized the same
//! way: repeat a workload in fixed-minimum wall-clock windows and take
//! the **median** window rate, so one preempted window cannot trip the
//! 20% `bench_guard` regression gate. The three bench binaries used to
//! carry their own copies of this loop; they now share this tested one.

use std::time::Instant;

/// Window schedule for [`median_rate`]. Each bench keeps its historical
/// tuning (window count, minimum window length, warmup) by constructing
/// its own schedule — the measurement loop itself is shared.
#[derive(Debug, Clone, Copy)]
pub struct Windows {
    /// Timed windows measured; the reported rate is their median.
    pub count: usize,
    /// Minimum wall-clock seconds per window (a window always runs at
    /// least this long, so per-call timer noise amortizes away).
    pub min_seconds: f64,
    /// Minimum calls per window (guards very fast clocks against a
    /// window ending after a single call).
    pub min_calls: usize,
    /// Untimed calls before the first window (cache/branch warmup).
    pub warmup_calls: usize,
}

impl Windows {
    /// Nine 100ms windows after one warmup call — the schedule the
    /// serving bench's gated metrics have always used.
    pub fn serving() -> Windows {
        Windows {
            count: 9,
            min_seconds: 0.1,
            min_calls: 1,
            warmup_calls: 1,
        }
    }

    /// Five 80ms windows, no warmup — the conversion bench's
    /// fine-granularity fork/join schedule.
    pub fn fine() -> Windows {
        Windows {
            count: 5,
            min_seconds: 0.08,
            min_calls: 1,
            warmup_calls: 0,
        }
    }

    /// One 200ms / ≥10-call window after three warmup calls — the
    /// inference bench's schedule (its workloads are slow enough that a
    /// single long window beats many short ones).
    pub fn inference() -> Windows {
        Windows {
            count: 1,
            min_seconds: 0.2,
            min_calls: 10,
            warmup_calls: 3,
        }
    }
}

/// Host identifier stamped into every `BENCH_*.json` artifact (alongside
/// the core count) so a committed baseline can be traced to the machine
/// that produced it — `per_sec` floors only mean anything same-host.
/// Reads the kernel hostname; `"unknown"` when unavailable.
pub fn host_id() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Median of a sample set under the IEEE total order (upper median for
/// even lengths). Panics on an empty set — a gated metric with no
/// samples is a bench bug, not a value.
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample set");
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median units-per-second of `f` over the window schedule: each window
/// repeats `f` until both window minimums are met, yielding
/// `calls * units_per_call / elapsed`; the reported rate is the median
/// window.
pub fn median_rate(w: Windows, units_per_call: usize, mut f: impl FnMut()) -> f64 {
    assert!(w.count > 0, "median_rate needs at least one window");
    for _ in 0..w.warmup_calls {
        f();
    }
    let rates: Vec<f64> = (0..w.count)
        .map(|_| {
            let mut calls = 0usize;
            let start = Instant::now();
            loop {
                f();
                calls += 1;
                let seconds = start.elapsed().as_secs_f64();
                if seconds >= w.min_seconds && calls >= w.min_calls.max(1) {
                    break (calls * units_per_call) as f64 / seconds;
                }
            }
        })
        .collect();
    median(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_free_and_upper_for_even() {
        assert_eq!(median(vec![3.0]), 3.0);
        assert_eq!(median(vec![9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 3.0);
        // One wild outlier cannot move the summary — the property the
        // bench_guard gate relies on.
        assert_eq!(median(vec![5.0, 5.0, 1e12, 5.0, 5.0]), 5.0);
        // total_cmp keeps NaN at the top instead of scrambling the sort.
        assert_eq!(median(vec![2.0, f64::NAN, 1.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn median_rejects_empty() {
        median(Vec::new());
    }

    #[test]
    fn median_rate_counts_warmup_and_window_calls() {
        let mut calls = 0usize;
        let w = Windows {
            count: 3,
            min_seconds: 0.0,
            min_calls: 4,
            warmup_calls: 2,
        };
        let rate = median_rate(w, 1, || calls += 1);
        assert_eq!(calls, 2 + 3 * 4, "warmup + count x min_calls");
        assert!(rate.is_finite() && rate > 0.0, "rate {rate}");
    }

    #[test]
    fn median_rate_scales_with_units_per_call() {
        // Identical work measured with 1 vs 1000 units per call must
        // report ~1000x the rate (same wall clock, more units).
        let w = Windows {
            count: 3,
            min_seconds: 0.001,
            min_calls: 1,
            warmup_calls: 0,
        };
        let work = || {
            std::hint::black_box((0..2_000).map(|i| i as f64).sum::<f64>());
        };
        let r1 = median_rate(w, 1, work);
        let r1000 = median_rate(w, 1000, work);
        let ratio = r1000 / r1;
        assert!(
            (200.0..5000.0).contains(&ratio),
            "ratio {ratio} far from 1000x"
        );
    }

    #[test]
    fn median_rate_respects_min_window_seconds() {
        let w = Windows {
            count: 1,
            min_seconds: 0.02,
            min_calls: 1,
            warmup_calls: 0,
        };
        let start = Instant::now();
        median_rate(w, 1, || {});
        assert!(
            start.elapsed().as_secs_f64() >= 0.02,
            "window ended before its minimum length"
        );
    }

    #[test]
    fn preset_schedules_match_their_benches() {
        let s = Windows::serving();
        assert_eq!((s.count, s.min_calls, s.warmup_calls), (9, 1, 1));
        let f = Windows::fine();
        assert_eq!((f.count, f.min_calls, f.warmup_calls), (5, 1, 0));
        let i = Windows::inference();
        assert_eq!((i.count, i.min_calls, i.warmup_calls), (1, 10, 3));
    }
}
