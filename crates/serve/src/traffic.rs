//! Open-loop traffic generation: request arrival processes replayed
//! against a [`crate::TreeServer`] without ever waiting for responses —
//! the discipline that makes tail-latency measurements honest (a
//! closed loop would self-throttle exactly when the server falls behind).
//!
//! Two arrival shapes mirror the paper's two local scenarios:
//!
//! * **ABR replay** — one decision per video chunk, so inter-arrival
//!   times are successive chunk download times over a bandwidth trace
//!   ([`ArrivalProcess::from_abr_trace`]), bursty exactly where the trace
//!   is.
//! * **Poisson** — memoryless flow arrivals like the AuTO workload
//!   generator ([`ArrivalProcess::poisson`], or
//!   [`ArrivalProcess::from_flow_arrivals`] to replay a generated
//!   [`metis_flowsched::FlowRequest`] schedule exactly).

use crate::clock;
use crate::engine::{Response, ServerHandle};
use metis_abr::NetworkTrace;
use metis_flowsched::FlowRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// A finite schedule of request inter-arrival gaps (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    name: String,
    gaps_s: Vec<f64>,
}

impl ArrivalProcess {
    /// Replay an explicit gap sequence.
    pub fn replay(name: impl Into<String>, gaps_s: Vec<f64>) -> Self {
        assert!(
            gaps_s.iter().all(|g| g.is_finite() && *g >= 0.0),
            "inter-arrival gaps must be finite and non-negative"
        );
        ArrivalProcess {
            name: name.into(),
            gaps_s,
        }
    }

    /// ABR decision cadence over a bandwidth trace: request `k`'s gap is
    /// the time the trace needs to download the `k`-th chunk of
    /// `chunk_bytes`, starting where the previous download ended.
    pub fn from_abr_trace(trace: &NetworkTrace, chunk_bytes: f64, requests: usize) -> Self {
        let mut t = 0.0;
        let gaps: Vec<f64> = (0..requests)
            .map(|_| {
                let dt = trace.download_time(t, chunk_bytes);
                t += dt;
                dt
            })
            .collect();
        ArrivalProcess::replay(format!("abr:{}", trace.name), gaps)
    }

    /// Memoryless arrivals at `rate_per_s`, via the same inverse-transform
    /// exponential draw the AuTO workload generator uses.
    pub fn poisson(rate_per_s: f64, requests: usize, seed: u64) -> Self {
        assert!(rate_per_s > 0.0, "arrival rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let gaps: Vec<f64> = (0..requests)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                -u.ln() / rate_per_s
            })
            .collect();
        ArrivalProcess::replay(format!("poisson:{rate_per_s}"), gaps)
    }

    /// Replay the exact arrival instants of a generated flow schedule
    /// (gaps are successive `arrival_s` differences).
    pub fn from_flow_arrivals(flows: &[FlowRequest]) -> Self {
        let mut last = 0.0;
        let gaps: Vec<f64> = flows
            .iter()
            .map(|f| {
                let gap = (f.arrival_s - last).max(0.0);
                last = f.arrival_s;
                gap
            })
            .collect();
        ArrivalProcess::replay("flowsched", gaps)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of requests this schedule issues.
    pub fn len(&self) -> usize {
        self.gaps_s.len()
    }

    pub fn is_empty(&self) -> bool {
        self.gaps_s.is_empty()
    }

    /// The raw gap sequence (seconds).
    pub fn gaps_s(&self) -> &[f64] {
        &self.gaps_s
    }

    /// Wall-clock span of the full schedule at scale 1.
    pub fn duration_s(&self) -> f64 {
        self.gaps_s.iter().sum()
    }

    /// Mean offered load in requests per second at scale 1.
    pub fn offered_rate_per_s(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.len() as f64 / d
        } else {
            0.0
        }
    }
}

/// Drive one arrival schedule open-loop against a server: request `k` is
/// submitted at its scheduled instant (`time_scale` stretches or, at
/// `0.0`, removes the gaps) with features `features(k)`, never waiting
/// for an answer; once everything is submitted, block for the responses
/// and return them **sorted by request id**.
///
/// Pacing follows the server's [`clock::Clock`]: on the real clock each gap is
/// slept (with the default [`clock::DEFAULT_SPIN_TRIM`] busy-spin tail —
/// see [`drive_open_loop_paced`] to bound or disable it), while on a
/// virtual clock the gaps advance virtual time and cost nothing.
pub fn drive_open_loop(
    handle: &mut ServerHandle,
    arrivals: &ArrivalProcess,
    features: impl FnMut(u64) -> Vec<f64>,
    time_scale: f64,
) -> Vec<Response> {
    drive_open_loop_paced(
        handle,
        arrivals,
        features,
        time_scale,
        clock::DEFAULT_SPIN_TRIM,
    )
}

/// [`drive_open_loop`] with an explicit busy-spin budget. The old pacer
/// spun the last 100µs of **every** gap unconditionally; here the spin
/// tail is the caller's choice — [`Duration::ZERO`] never spins (pure
/// `thread::sleep` pacing, cheapest but at OS-timer granularity), and
/// whatever is passed is clamped to [`clock::MAX_SPIN_TRIM`].
pub fn drive_open_loop_paced(
    handle: &mut ServerHandle,
    arrivals: &ArrivalProcess,
    mut features: impl FnMut(u64) -> Vec<f64>,
    time_scale: f64,
    spin_trim: Duration,
) -> Vec<Response> {
    assert!(
        time_scale.is_finite() && time_scale >= 0.0,
        "time_scale must be finite and non-negative"
    );
    let clock = Arc::clone(handle.clock());
    let start_s = clock.now_s();
    let mut t = 0.0;
    for (k, gap) in arrivals.gaps_s().iter().enumerate() {
        if time_scale > 0.0 {
            t += gap * time_scale;
            clock.sleep_until(start_s + t, spin_trim);
        }
        handle.submit(features(k as u64));
    }
    handle.collect()
}

/// [`drive_open_loop`] in **drain-segmented** mode: before submitting a
/// request whose scheduled gap is at least `drain_gap_s`, every
/// outstanding response is collected first, so the schedule's large gaps
/// split the stream into segments that can never share a micro-batch.
///
/// On a [`clock::Clock::virtual_at`] server (the mode the fabric determinism
/// suites run in CI) nothing sleeps — each gap advances virtual time, a
/// run takes compute time instead of schedule time, and every batch
/// closes on the collect's explicit flush, deterministically placed by
/// the schedule rather than by wall-clock raciness. On a real-clock
/// server the same drains quiesce the ingest queue and the wall deadline
/// closes each partial batch, as before this function grew a clock.
/// Responses return **sorted by request id** either way.
pub fn drive_open_loop_virtual(
    handle: &mut ServerHandle,
    arrivals: &ArrivalProcess,
    mut features: impl FnMut(u64) -> Vec<f64>,
    drain_gap_s: f64,
) -> Vec<Response> {
    assert!(
        drain_gap_s.is_finite() && drain_gap_s > 0.0,
        "drain_gap_s must be finite and positive"
    );
    let clock = Arc::clone(handle.clock());
    let start_s = clock.now_s();
    let mut t = 0.0;
    let mut responses = Vec::with_capacity(arrivals.len());
    for (k, gap) in arrivals.gaps_s().iter().enumerate() {
        t += gap;
        if clock.is_virtual() {
            clock.advance_to(start_s + t);
        }
        if *gap >= drain_gap_s && handle.outstanding() > 0 {
            responses.extend(handle.collect());
        }
        handle.submit(features(k as u64));
    }
    responses.extend(handle.collect());
    responses.sort_by_key(|r| r.id);
    responses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeConfig, TreeServer};
    use crate::registry::ModelRegistry;
    use metis_abr::{generate_trace, TraceGenConfig};
    use metis_dt::{fit, Dataset, TreeConfig};
    use metis_flowsched::{generate_flows, SizeDistribution};
    use std::sync::Arc;

    #[test]
    fn abr_replay_matches_trace_download_times() {
        let trace = generate_trace(&TraceGenConfig::hsdpa_like(), "t", 3);
        let proc = ArrivalProcess::from_abr_trace(&trace, 500_000.0, 40);
        assert_eq!(proc.len(), 40);
        assert!(proc.gaps_s().iter().all(|&g| g > 0.0));
        // Replaying is deterministic and the gaps chain: gap k starts where
        // gap k-1 ended.
        let again = ArrivalProcess::from_abr_trace(&trace, 500_000.0, 40);
        assert_eq!(proc, again);
        let mut t = 0.0;
        for &g in proc.gaps_s() {
            assert_eq!(g, trace.download_time(t, 500_000.0));
            t += g;
        }
        // ~1.2 Mbps mean for 4 Mb chunks => gaps on the order of seconds.
        assert!(proc.duration_s() > 10.0, "{}", proc.duration_s());
    }

    #[test]
    fn poisson_rate_is_approximately_honoured() {
        let proc = ArrivalProcess::poisson(1000.0, 5000, 7);
        let rate = proc.offered_rate_per_s();
        assert!((800.0..1200.0).contains(&rate), "rate {rate}");
        assert_eq!(proc, ArrivalProcess::poisson(1000.0, 5000, 7));
        assert_ne!(
            proc.gaps_s(),
            ArrivalProcess::poisson(1000.0, 5000, 8).gaps_s()
        );
    }

    #[test]
    fn flow_arrivals_replay_exact_schedule() {
        let dist = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(5);
        let flows = generate_flows(&dist, 8, 10e9, 0.4, 0.5, &mut rng);
        let proc = ArrivalProcess::from_flow_arrivals(&flows);
        assert_eq!(proc.len(), flows.len());
        let reconstructed: f64 = proc.gaps_s().iter().sum();
        assert!((reconstructed - flows.last().unwrap().arrival_s).abs() < 1e-9);
    }

    #[test]
    fn open_loop_drive_answers_every_request_in_id_order() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let tree = fit(
            &Dataset::classification(x, y, 2).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap();
        let server = TreeServer::start(
            Arc::new(ModelRegistry::new(tree.clone())),
            ServeConfig {
                max_batch: 16,
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        let arrivals = ArrivalProcess::poisson(50_000.0, 120, 11);
        let responses = drive_open_loop(&mut handle, &arrivals, |k| vec![(k % 60) as f64], 1.0);
        assert_eq!(responses.len(), 120);
        for (k, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, k as u64);
            assert_eq!(resp.prediction, tree.predict(&[(k % 60) as f64]));
        }
        let report = server.shutdown();
        assert_eq!(report.served, 120);
        assert_eq!(report.delivery_failures, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_gaps() {
        let _ = ArrivalProcess::replay("bad", vec![0.1, -0.2]);
    }

    /// The Poisson generator is a pure function of (rate, n, seed): same
    /// seed ⇒ the identical schedule to the bit, across repeated calls
    /// and regardless of what else the process computed in between —
    /// the property the fabric determinism suites lean on.
    #[test]
    fn poisson_same_seed_identical_schedule_to_the_bit() {
        let a = ArrivalProcess::poisson(750.0, 300, 42);
        let _interleaved = ArrivalProcess::poisson(99.0, 10, 1); // unrelated draw
        let b = ArrivalProcess::poisson(750.0, 300, 42);
        assert_eq!(a.len(), 300);
        for (x, y) in a.gaps_s().iter().zip(b.gaps_s()) {
            assert_eq!(x.to_bits(), y.to_bits(), "schedule diverged bitwise");
        }
        // Different seeds must actually consume the seed.
        assert_ne!(a.gaps_s(), ArrivalProcess::poisson(750.0, 300, 43).gaps_s());
    }

    /// Virtual-clock driving: the schedule's large gaps split the stream
    /// into segments whose requests can never share a micro-batch, and —
    /// with the server itself on a virtual [`Clock`] — *everything* is
    /// virtual-time bookkeeping: the clock ends at exactly the gap sum,
    /// each segment is one explicitly-flushed batch, and every latency is
    /// exactly zero (stamps within a segment are identical). No assertion
    /// reads the wall clock, so a loaded CI host cannot flake this.
    #[test]
    fn virtual_clock_preserves_segment_structure_and_answers_everything() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let tree = fit(
            &Dataset::classification(x, y, 2).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap();
        let clock = crate::clock::Clock::virtual_at(0.0);
        let server = TreeServer::start_clocked(
            Arc::new(ModelRegistry::new(tree.clone())),
            ServeConfig {
                max_batch: 64,                      // bigger than any segment: only drains flush
                max_delay: Duration::from_secs(10), // never consulted on a virtual clock
                ..Default::default()
            },
            Arc::clone(&clock),
        );
        // Segments of 4, 3, and 5 requests separated by 1-second gaps the
        // virtual clock never actually sleeps.
        let gaps = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let segment_len = |id: u64| match id {
            0..=3 => 4usize,
            4..=6 => 3,
            _ => 5,
        };
        let arrivals = ArrivalProcess::replay("segments", gaps);
        let mut handle = server.handle();
        let responses =
            drive_open_loop_virtual(&mut handle, &arrivals, |k| vec![(k % 60) as f64], 0.5);
        assert_eq!(
            clock.now_s(),
            2.0,
            "virtual time must advance by exactly the gap sum"
        );
        assert_eq!(responses.len(), 12);
        for (k, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, k as u64, "sorted by id");
            assert_eq!(resp.prediction, tree.predict(&[(k % 60) as f64]));
            assert_eq!(
                resp.batch_size,
                segment_len(resp.id),
                "request {} must batch with exactly its own segment",
                resp.id
            );
            assert_eq!(
                resp.latency_s, 0.0,
                "same-stamp segment members have zero virtual latency"
            );
        }
        let report = server.shutdown();
        assert_eq!(report.served, 12);
        assert_eq!(report.batches, 3, "one explicit flush per segment");
        assert_eq!(report.latency.max_s, 0.0);
    }
}
