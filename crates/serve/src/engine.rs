//! The request engine: MPSC ingest → micro-batcher → striped compiled-tree
//! execution on the shared worker pool.
//!
//! One long-lived **batcher thread** owns the ingest queue. It opens a
//! batch at the first queued request and flushes when either `max_batch`
//! requests are queued or `max_delay` has elapsed since the batch opened —
//! the classic size-or-deadline micro-batching rule. Each flush:
//!
//! 1. pins the live model epoch ([`crate::ModelRegistry::current`]) — a
//!    concurrent hot swap never retroactively changes a dispatched batch,
//! 2. walks the batch through the epoch's [`crate::ServedModel`] — a
//!    single lane-vectorized compiled tree or a block-major
//!    [`metis_dt::Forest`] ensemble — into a scratch buffer reused
//!    across flushes ([`crate::ServedModel::predict_batch_into`]),
//!    striping row chunks across
//!    [`metis_nn::par::parallel_map_indexed`] under the engine's
//!    **dedicated pool group** (so serving shares the process-wide pool
//!    fairly with concurrently running conversion pipelines),
//! 3. answers every request with its prediction, the serving epoch, and
//!    its measured queue+service latency — latency is additionally
//!    bucketed by the serving model's ensemble width, so a registry that
//!    hot-swaps between tree and forest epochs reports each shape's
//!    percentiles separately ([`EngineReport::per_width`]).
//!
//! Results are merged by row index, so every response is bit-identical to
//! the sequential oracle on the reported epoch's source trees (single
//! `DecisionTree::predict`, or the forest's majority vote) for any batch
//! size, deadline, thread count, or swap interleaving.
//!
//! **Time** comes from a [`Clock`]: [`TreeServer::start`] runs on the
//! real clock (wall-time stamps and the deadline flush, exactly the
//! pre-clock behavior), while [`TreeServer::start_clocked`] with a
//! virtual clock turns the engine into a discrete-event component — no
//! wall deadline at all (batches close on size, an explicit
//! [`ServerHandle`] flush, or shutdown), and per-request latency is the
//! batch's virtual close time minus the request's virtual submit stamp,
//! a pure function of the event schedule. That is what lets `metis_sim`
//! run millions of virtual sessions through this exact hot path with
//! bit-identical reports for any thread count.

use crate::clock::Clock;
use crate::latency::{LatencyRecorder, LatencySummary};
use crate::registry::ModelRegistry;
use metis_dt::Prediction;
use metis_telemetry::{FlushStamps, ShardTelemetry};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching and execution knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush an incomplete batch this long after it opened.
    pub max_delay: Duration,
    /// Worker threads a flush stripes across (0 = all cores). Results are
    /// identical for any value.
    pub threads: usize,
    /// Rows per pool stripe chunk; batches at or below this size execute
    /// inline on the batcher thread.
    pub stripe_rows: usize,
    /// Pool scheduling group this server's flushes submit under. `None`
    /// (the default) reserves a fresh group per batcher, making the
    /// server its own fairness tenant; the fabric's shards pass explicit
    /// groups so related batchers can share or split tenancy as the
    /// tenant map dictates. Never affects results.
    pub group: Option<u64>,
    /// Deadline class of this server's pool submissions (lower = more
    /// urgent; see [`metis_nn::par::with_deadline_class`]). The fabric
    /// maps per-tenant SLO tiers onto this. Never affects results.
    pub deadline_class: u8,
    /// Live telemetry scope this engine reports into (`None`, the
    /// default, disables instrumentation — the hot path then pays one
    /// `Option` test per site and reads no clocks for telemetry).
    /// Under a virtual clock every stamp the engine feeds the scope is
    /// derived from submit stamps, never from a live clock read, so the
    /// scope's digest is bit-identical across thread counts.
    pub telemetry: Option<Arc<ShardTelemetry>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 256,
            max_delay: Duration::from_micros(500),
            threads: 0,
            stripe_rows: 64,
            group: None,
            deadline_class: 0,
            telemetry: None,
        }
    }
}

/// One in-flight request. `submitted` is a [`Clock`] reading (seconds),
/// so the same struct carries wall stamps under the real clock and event
/// stamps under a virtual one.
pub struct Request {
    pub id: u64,
    pub features: Vec<f64>,
    submitted: f64,
    reply: Sender<Response>,
}

/// The engine's answer to one [`Request`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Id the submitting [`ServerHandle`] assigned.
    pub id: u64,
    /// Bit-identical to `DecisionTree::predict` on the epoch's source tree.
    pub prediction: Prediction,
    /// Model epoch that served this request.
    pub epoch: u64,
    /// Queue wait + batching delay + service time, in seconds.
    pub latency_s: f64,
    /// Size of the micro-batch this request was flushed in.
    pub batch_size: usize,
}

enum Msg {
    Req(Request),
    /// Close the open batch now (no-op when none is open). Virtual-clock
    /// collectors send this instead of relying on a wall deadline, so
    /// batch composition is a function of submission order alone.
    Flush,
    Shutdown,
}

/// What the batcher thread accumulated over its lifetime.
#[derive(Default)]
struct EngineLog {
    latency: LatencyRecorder,
    served: u64,
    batches: u64,
    delivery_failures: u64,
    max_batch_seen: usize,
    per_epoch: BTreeMap<u64, u64>,
    /// Latency samples bucketed by the serving model's ensemble width
    /// (1 = single tree, k = k-tree forest).
    per_width: BTreeMap<usize, LatencyRecorder>,
}

/// Row and prediction buffers a batcher reuses across flushes, so the
/// steady-state flush path allocates nothing per batch.
#[derive(Default)]
struct FlushScratch {
    rows: Vec<f64>,
    predictions: Vec<Prediction>,
    /// Per-request latency / queue-wait of the batch in flight, staged
    /// here so telemetry records them in one amortized pass before any
    /// response is delivered.
    latencies: Vec<f64>,
    queue_waits: Vec<f64>,
}

/// Lifetime summary of one [`TreeServer`], returned by
/// [`TreeServer::shutdown`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EngineReport {
    /// Requests answered (predictions computed and sent).
    pub served: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Responses whose submitter had already dropped its handle.
    pub delivery_failures: u64,
    /// Largest micro-batch flushed.
    pub max_batch_seen: usize,
    /// Mean flushed batch size.
    pub mean_batch: f64,
    /// Percentile summary over every served request's latency.
    pub latency: LatencySummary,
    /// The raw per-request latency samples behind [`EngineReport::latency`]
    /// — the fabric merges these across shards for exact per-scenario and
    /// per-tenant percentiles ([`LatencyRecorder::merge`]).
    pub recorder: LatencyRecorder,
    /// `(epoch, requests served from it)`, ascending by epoch.
    pub per_epoch: Vec<(u64, u64)>,
    /// `(ensemble width, latency summary of requests served at that
    /// width)`, ascending by width — separates single-tree epochs from
    /// k-tree forest epochs when a registry hot-swaps between shapes.
    pub per_width: Vec<(usize, LatencySummary)>,
}

/// A per-client submission handle with its own response channel. Submit
/// open-loop with [`ServerHandle::submit`]; gather everything outstanding
/// with [`ServerHandle::collect`]. Handles are independent — one per
/// client thread.
pub struct ServerHandle {
    tx: Sender<Msg>,
    reply_tx: Sender<Response>,
    reply_rx: Receiver<Response>,
    next_id: u64,
    outstanding: usize,
    n_features: usize,
    clock: Arc<Clock>,
    telemetry: Option<Arc<ShardTelemetry>>,
}

impl ServerHandle {
    /// Feature width every request must carry (invariant across hot
    /// swaps — the registry rejects trees with a different schema).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The clock this handle stamps submissions with — the server's own.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Enqueue one request and return its (per-handle) id. Never blocks on
    /// the server: ingest is an unbounded MPSC queue. A malformed request
    /// panics **here**, in the submitting client's thread — the shared
    /// batcher never sees it, so one bad client cannot take the engine
    /// down for its neighbours.
    pub fn submit(&mut self, features: Vec<f64>) -> u64 {
        assert_eq!(
            features.len(),
            self.n_features,
            "submit: request has {} features, the server's models take {}",
            features.len(),
            self.n_features
        );
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding += 1;
        if let Some(scope) = &self.telemetry {
            scope.queue_depth.inc();
        }
        self.tx
            .send(Msg::Req(Request {
                id,
                features,
                submitted: self.clock.now_s(),
                reply: self.reply_tx.clone(),
            }))
            .expect("TreeServer ingest queue closed while submitting");
        id
    }

    /// Requests submitted through this handle that have not been collected.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Block until every outstanding request is answered; returns the
    /// responses **sorted by id** (deterministic regardless of batching).
    ///
    /// On a virtual-clock server there is no deadline flush, so a partial
    /// batch would otherwise wait forever: collecting first sends an
    /// explicit flush marker (a no-op when nothing is open). The real
    /// clock path is untouched — the deadline does the closing there.
    pub fn collect(&mut self) -> Vec<Response> {
        if self.clock.is_virtual() && self.outstanding > 0 {
            self.tx
                .send(Msg::Flush)
                .expect("TreeServer ingest queue closed while flushing");
        }
        let mut out = Vec::with_capacity(self.outstanding);
        for _ in 0..self.outstanding {
            out.push(
                self.reply_rx
                    .recv()
                    .expect("TreeServer dropped with requests in flight"),
            );
        }
        self.outstanding = 0;
        out.sort_by_key(|r| r.id);
        out
    }
}

/// The serving engine: spawn with [`TreeServer::start`], mint client
/// handles with [`TreeServer::handle`], stop with [`TreeServer::shutdown`].
pub struct TreeServer {
    tx: Sender<Msg>,
    thread: Option<JoinHandle<EngineLog>>,
    registry: Arc<ModelRegistry>,
    clock: Arc<Clock>,
    telemetry: Option<Arc<ShardTelemetry>>,
}

impl TreeServer {
    /// Start the batcher thread over a model registry, on the real clock.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> Self {
        TreeServer::start_clocked(registry, cfg, Clock::real())
    }

    /// [`TreeServer::start`] on an explicit [`Clock`]. A virtual clock
    /// switches batching from size-or-deadline to size-or-explicit-flush
    /// (see [`ServerHandle::collect`]) and makes every latency figure a
    /// deterministic virtual-time span.
    pub fn start_clocked(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        clock: Arc<Clock>,
    ) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.stripe_rows >= 1, "stripe_rows must be at least 1");
        let (tx, rx) = channel();
        let reg = Arc::clone(&registry);
        let batcher_clock = Arc::clone(&clock);
        let telemetry = cfg.telemetry.clone();
        let thread = std::thread::Builder::new()
            .name("metis-serve-batcher".into())
            .spawn(move || batcher_loop(rx, reg, cfg, batcher_clock))
            .expect("spawn serve batcher");
        TreeServer {
            tx,
            thread: Some(thread),
            registry,
            clock,
            telemetry,
        }
    }

    /// The registry this server reads — publish to it to hot-swap.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The clock this server stamps and flushes on.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Mint an independent client handle.
    pub fn handle(&self) -> ServerHandle {
        let (reply_tx, reply_rx) = channel();
        ServerHandle {
            tx: self.tx.clone(),
            reply_tx,
            reply_rx,
            next_id: 0,
            outstanding: 0,
            n_features: self.registry.n_features(),
            clock: Arc::clone(&self.clock),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Stop the engine: already-queued requests are drained and answered
    /// (zero drops for clients that finished submitting), then the batcher
    /// exits and its lifetime report is returned.
    pub fn shutdown(mut self) -> EngineReport {
        let _ = self.tx.send(Msg::Shutdown);
        let log = self
            .thread
            .take()
            .expect("shutdown called once")
            .join()
            .expect("serve batcher panicked");
        let batches = log.batches.max(1);
        EngineReport {
            served: log.served,
            batches: log.batches,
            delivery_failures: log.delivery_failures,
            max_batch_seen: log.max_batch_seen,
            mean_batch: log.served as f64 / batches as f64,
            latency: log.latency.summary(),
            recorder: log.latency,
            per_epoch: log.per_epoch.into_iter().collect(),
            per_width: log
                .per_width
                .into_iter()
                .map(|(w, rec)| (w, rec.summary()))
                .collect(),
        }
    }
}

fn batcher_loop(
    rx: Receiver<Msg>,
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    clock: Arc<Clock>,
) -> EngineLog {
    // Pool submissions carry this server's group (its own fresh one by
    // default), so the pool's scheduler treats the serving path as one
    // tenant — or as part of a shared tenant when the config says so.
    let group = cfg.group.unwrap_or_else(metis_nn::par::fresh_group);
    // Virtual time has no wall deadline: batches close on size, an
    // explicit flush marker, or shutdown — nothing else, so batch
    // composition is deterministic in submission order.
    let use_deadline = !clock.is_virtual();
    let scope = cfg.telemetry.clone();
    let scope = scope.as_deref();
    let mut log = EngineLog::default();
    let mut scratch = FlushScratch::default();
    loop {
        // Open a batch at the first request (block indefinitely — an idle
        // server costs nothing).
        let first = match rx.recv() {
            Ok(Msg::Req(r)) => r,
            // A flush with no open batch: nothing to do.
            Ok(Msg::Flush) => continue,
            // Shutdown can land exactly on a batch boundary: break into
            // the drain below rather than exiting — requests queued
            // behind the marker must still be answered.
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        if let Some(scope) = scope {
            scope.on_batch_open();
        }
        // Wall stamp of the batch opening, for the batch-form span. Only
        // read under a real clock — virtual stamps derive from the
        // batch's submit stamps inside `flush`, never from a live read.
        let wall_open_s = (scope.is_some() && use_deadline).then(|| clock.now_s());
        let mut batch = vec![first];
        let deadline = use_deadline.then(|| Instant::now() + cfg.max_delay);
        let mut shutting_down = false;
        while batch.len() < cfg.max_batch {
            let msg = if let Some(deadline) = deadline {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        shutting_down = true;
                        break;
                    }
                }
            } else {
                match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => {
                        shutting_down = true;
                        break;
                    }
                }
            };
            match msg {
                Msg::Req(r) => batch.push(r),
                Msg::Flush => break,
                Msg::Shutdown => {
                    shutting_down = true;
                    break;
                }
            }
        }
        if let Some(scope) = scope {
            // One balance update per batch, not one RMW per request —
            // the gauge is monitoring-only, never digested.
            scope.queue_depth.add(-(batch.len() as i64));
        }
        flush(
            &mut log,
            &mut scratch,
            &registry,
            &cfg,
            group,
            &clock,
            batch,
            wall_open_s,
        );
        if shutting_down {
            break;
        }
    }
    // Shutdown drain: answer everything still queued so no
    // already-submitted request is dropped, whichever path saw the
    // marker. Extra shutdown markers mid-queue (a fabric broadcasting
    // shutdown to shards, or two owners racing) must not truncate the
    // drain: skip markers, keep draining until the queue is empty.
    let mut rest: Vec<Request> = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(Msg::Req(r)) => rest.push(r),
            Ok(Msg::Flush) | Ok(Msg::Shutdown) => continue,
            Err(_) => break,
        }
    }
    if let Some(scope) = scope {
        scope.queue_depth.add(-(rest.len() as i64));
        if !rest.is_empty() {
            // Virtual stamp: the latest drained submit stamp (schedule-
            // pure); real stamp: the wall drain time.
            let stamp_s = if clock.is_virtual() {
                rest.iter().map(|r| r.submitted).fold(0.0, f64::max)
            } else {
                clock.now_s()
            };
            scope.on_drain(stamp_s, rest.len());
        }
    }
    let mut rest = rest.into_iter().peekable();
    while rest.peek().is_some() {
        let chunk: Vec<Request> = rest.by_ref().take(cfg.max_batch).collect();
        let wall_open_s = (scope.is_some() && use_deadline).then(|| clock.now_s());
        if let Some(scope) = scope {
            scope.on_batch_open();
        }
        flush(
            &mut log,
            &mut scratch,
            &registry,
            &cfg,
            group,
            &clock,
            chunk,
            wall_open_s,
        );
    }
    log
}

#[allow(clippy::too_many_arguments)]
fn flush(
    log: &mut EngineLog,
    scratch: &mut FlushScratch,
    registry: &ModelRegistry,
    cfg: &ServeConfig,
    group: u64,
    clock: &Clock,
    batch: Vec<Request>,
    // Wall stamp of the batch opening (real clock + telemetry only).
    wall_open_s: Option<f64>,
) {
    if batch.is_empty() {
        return;
    }
    // Virtual-clock latency must not read the clock here: concurrent
    // drivers may have pushed the high-water mark past this batch's
    // events, and a racy read would leak host scheduling into the
    // report. The batch closes at its **latest submit stamp** — a pure
    // function of the event schedule — so latency_i = close - stamp_i,
    // the virtual batching delay. The real clock keeps the historical
    // wall measurement (now - stamp) per request.
    let virtual_close_s = clock
        .is_virtual()
        .then(|| batch.iter().map(|r| r.submitted).fold(0.0, f64::max));
    // Telemetry stamps follow the same discipline: under a virtual clock
    // the batch "opens" at its earliest submit stamp and the kernel/close
    // stamps collapse onto the batch close — all pure functions of the
    // schedule, so the span stream digests identically for any thread
    // count. Under a real clock they are wall reads around the work.
    let scope = cfg.telemetry.as_deref();
    let open_s = scope.map(|_| match virtual_close_s {
        Some(_) => batch
            .iter()
            .map(|r| r.submitted)
            .fold(f64::INFINITY, f64::min),
        None => wall_open_s.unwrap_or_else(|| clock.now_s()),
    });
    // Pin the epoch for the whole batch: in-flight work finishes on the
    // model it started with even if a publish lands mid-execution.
    let epoch_model = registry.current();
    let model = &epoch_model.model;
    let n_features = model.n_features();
    let n = batch.len();
    scratch.rows.clear();
    scratch.rows.reserve(n * n_features);
    for req in &batch {
        // Unreachable for well-typed use: submit() validates width and
        // publish() keeps it invariant across epochs.
        debug_assert_eq!(req.features.len(), n_features);
        scratch.rows.extend_from_slice(&req.features);
    }
    let chunks = n.div_ceil(cfg.stripe_rows);
    let kernel_start_s = scope.map(|_| virtual_close_s.unwrap_or_else(|| clock.now_s()));
    scratch.predictions.clear();
    if chunks <= 1 {
        // The steady-state micro-batch path: evaluate straight into the
        // reused scratch buffer — no allocation per flush.
        scratch.predictions.resize(n, Prediction::Class(0));
        model.predict_batch_into(&scratch.rows, &mut scratch.predictions);
    } else {
        // Contiguous row chunks across the pool, merged in chunk order —
        // identical to the single-chunk walk for any thread count. The
        // deadline class steers which tenant's chunks the pool's helpers
        // pick up first under contention; it never touches results.
        let rows = &scratch.rows;
        let chunked = metis_nn::par::with_deadline_class(cfg.deadline_class, || {
            metis_nn::par::with_group(group, || {
                metis_nn::par::parallel_map_indexed(chunks, cfg.threads, |c| {
                    let lo = c * cfg.stripe_rows;
                    let hi = ((c + 1) * cfg.stripe_rows).min(n);
                    model.predict_batch(&rows[lo * n_features..hi * n_features])
                })
            })
        });
        for chunk in chunked {
            scratch.predictions.extend_from_slice(&chunk);
        }
    }
    let kernel_end_s = scope.map(|_| virtual_close_s.unwrap_or_else(|| clock.now_s()));
    log.batches += 1;
    log.max_batch_seen = log.max_batch_seen.max(n);
    *log.per_epoch.entry(epoch_model.epoch).or_insert(0) += n as u64;
    // Accounting pass: stamp every request and stage its latency (and,
    // with telemetry on, queue-wait) before anything is delivered.
    let width_latency = log.per_width.entry(model.n_trees()).or_default();
    scratch.latencies.clear();
    scratch.queue_waits.clear();
    for req in &batch {
        let completed_s = virtual_close_s.unwrap_or_else(|| clock.now_s());
        let latency_s = log.latency.record_span(req.submitted, completed_s);
        width_latency.record(latency_s);
        log.served += 1;
        scratch.latencies.push(latency_s);
        if scope.is_some() {
            // Queue-wait = submit → kernel start: everything before the
            // model ran (ingest wait + batch formation).
            scratch
                .queue_waits
                .push((kernel_start_s.unwrap_or(completed_s) - req.submitted).max(0.0));
        }
    }
    // Record ALL the batch's telemetry (spans, flush event, served
    // counters, request sketches) BEFORE delivering any response: a
    // driver that has drained a wave must observe a quiescent scope,
    // otherwise the digest races the tail of the flush and drifts
    // across thread counts.
    if let Some(scope) = scope {
        let close_s = virtual_close_s.unwrap_or_else(|| clock.now_s());
        scope.record_flush(&FlushStamps {
            open_s: open_s.unwrap_or(close_s),
            kernel_start_s: kernel_start_s.unwrap_or(close_s),
            kernel_end_s: kernel_end_s.unwrap_or(close_s),
            close_s,
            rows: n,
            epoch: epoch_model.epoch,
            width: model.n_trees(),
        });
        scope.on_requests(close_s, &scratch.latencies, &scratch.queue_waits);
    }
    for ((req, &prediction), &latency_s) in batch
        .into_iter()
        .zip(scratch.predictions.iter())
        .zip(scratch.latencies.iter())
    {
        let sent = req.reply.send(Response {
            id: req.id,
            prediction,
            epoch: epoch_model.epoch,
            latency_s,
            batch_size: n,
        });
        if sent.is_err() {
            log.delivery_failures += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_dt::{fit, Dataset, DecisionTree, TreeConfig};

    fn staircase_tree(n_classes: usize) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![i as f64 / 120.0, (i % 7) as f64])
            .collect();
        let y: Vec<usize> = (0..120).map(|i| i * n_classes / 120).collect();
        let ds = Dataset::classification(x, y, n_classes).unwrap();
        fit(
            &ds,
            &TreeConfig {
                max_leaf_nodes: 16,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn req_features(k: u64) -> Vec<f64> {
        vec![(k % 120) as f64 / 120.0, (k % 7) as f64]
    }

    #[test]
    fn responses_match_sequential_oracle_and_ids() {
        let tree = staircase_tree(6);
        let server = TreeServer::start(
            Arc::new(ModelRegistry::new(tree.clone())),
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(2),
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        for k in 0..50u64 {
            handle.submit(req_features(k));
        }
        let responses = handle.collect();
        assert_eq!(responses.len(), 50);
        for (k, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, k as u64, "collect sorts by id");
            assert_eq!(resp.epoch, 0);
            assert_eq!(resp.prediction, tree.predict(&req_features(k as u64)));
            assert!(resp.latency_s >= 0.0 && resp.batch_size >= 1 && resp.batch_size <= 8);
        }
        let report = server.shutdown();
        assert_eq!(report.served, 50);
        assert_eq!(report.delivery_failures, 0);
        assert!(report.max_batch_seen <= 8);
        assert_eq!(report.per_epoch, vec![(0, 50)]);
        assert_eq!(report.latency.count, 50);
    }

    #[test]
    fn batch_one_flushes_immediately_and_deadline_flushes_partials() {
        let tree = staircase_tree(3);
        let server = TreeServer::start(
            Arc::new(ModelRegistry::new(tree)),
            ServeConfig {
                max_batch: 1,
                max_delay: Duration::from_secs(10), // never the trigger
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        for k in 0..5 {
            handle.submit(req_features(k));
        }
        let responses = handle.collect();
        assert!(responses.iter().all(|r| r.batch_size == 1));
        let report = server.shutdown();
        assert_eq!(report.batches, 5);
        assert!((report.mean_batch - 1.0).abs() < 1e-12);
    }

    /// On a virtual clock the deadline never fires (max_delay 10s would
    /// hang the collect if it were consulted): the open batch closes on
    /// the collect's explicit flush, and every latency is exactly the
    /// batch's latest virtual stamp minus the request's own — a pure
    /// function of the advance_to schedule.
    #[test]
    fn virtual_clock_server_flushes_on_collect_with_schedule_pure_latency() {
        let tree = staircase_tree(4);
        let clock = Clock::virtual_at(0.0);
        let server = TreeServer::start_clocked(
            Arc::new(ModelRegistry::new(tree.clone())),
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(10), // must never be the trigger
                ..Default::default()
            },
            Arc::clone(&clock),
        );
        let mut handle = server.handle();
        for k in 0..5u64 {
            handle.submit(req_features(k)); // stamped 0.0
        }
        clock.advance_to(2.5);
        for k in 5..9u64 {
            handle.submit(req_features(k)); // stamped 2.5
        }
        let responses = handle.collect();
        assert_eq!(responses.len(), 9);
        for resp in &responses {
            assert_eq!(resp.prediction, tree.predict(&req_features(resp.id)));
            assert_eq!(resp.batch_size, 9, "one explicit flush closes everything");
            let expect = if resp.id < 5 { 2.5 } else { 0.0 };
            assert_eq!(resp.latency_s, expect, "close(2.5) - own stamp, exactly");
        }
        let report = server.shutdown();
        assert_eq!(report.batches, 1);
        assert_eq!(report.served, 9);
        assert_eq!(report.latency.max_s, 2.5);
    }

    /// Virtual-clock telemetry stamps are pure functions of the submit
    /// schedule: batch-form spans min→max submit stamp, kernel/collect
    /// collapse onto the close, and the admission event carries the
    /// batch's deterministic composition.
    #[test]
    fn virtual_clock_telemetry_is_schedule_pure() {
        use metis_telemetry::{Stage, Telemetry};
        let tree = staircase_tree(4);
        let clock = Clock::virtual_at(0.0);
        let telemetry = Telemetry::enabled();
        let scope = telemetry.register("abr", 0, "gold").unwrap();
        let server = TreeServer::start_clocked(
            Arc::new(ModelRegistry::new(tree)),
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(10),
                telemetry: Some(Arc::clone(&scope)),
                ..Default::default()
            },
            Arc::clone(&clock),
        );
        let mut handle = server.handle();
        for k in 0..5u64 {
            handle.submit(req_features(k)); // stamped 0.0
        }
        clock.advance_to(2.5);
        for k in 5..9u64 {
            handle.submit(req_features(k)); // stamped 2.5
        }
        handle.collect();
        server.shutdown();
        assert_eq!(scope.served.get(), 9);
        assert_eq!(scope.batches.get(), 1);
        assert_eq!(scope.queue_depth.get(), 0, "submits all consumed");
        assert_eq!(scope.inflight_batches.get(), 0);
        assert_eq!(scope.served_per_epoch(), vec![(0, 9)]);
        let spans = scope.spans.records();
        assert_eq!(spans.len(), 3, "batch_form + kernel + collect");
        assert_eq!(spans[0].stage, Stage::BatchForm);
        assert_eq!(spans[0].start_s, 0.0, "opens at the earliest submit stamp");
        assert_eq!(spans[0].dur_s, 2.5, "forms until the latest submit stamp");
        for span in &spans[1..] {
            assert_eq!(span.start_s, 2.5, "kernel/collect collapse onto the close");
            assert_eq!(span.dur_s, 0.0);
            assert_eq!(span.rows, 9);
        }
        let events = scope.events.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind.name(), "admission");
        assert_eq!(events[0].time_s, 0.0);
        assert_eq!(events[1].kind.name(), "flush");
        assert_eq!(events[1].time_s, 2.5);
        assert_eq!(scope.latency.cumulative().count(), 9);
        assert_eq!(scope.stage_sketch(Stage::QueueWait).count(), 9);
    }

    #[test]
    fn shutdown_drains_queued_requests_zero_drops() {
        let tree = staircase_tree(4);
        let server = TreeServer::start(
            Arc::new(ModelRegistry::new(tree)),
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(10),
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        for k in 0..200 {
            handle.submit(req_features(k));
        }
        // Shut down while most requests are still queued: all must answer.
        let report = std::thread::scope(|scope| {
            let collector = scope.spawn(move || {
                let responses = handle.collect();
                assert_eq!(responses.len(), 200);
            });
            let report = server.shutdown();
            collector.join().unwrap();
            report
        });
        assert_eq!(report.served, 200);
        assert_eq!(report.delivery_failures, 0);
    }

    #[test]
    fn hot_swap_mid_stream_serves_each_epoch_consistently() {
        let t0 = staircase_tree(5);
        let t1 = staircase_tree(2);
        let registry = Arc::new(ModelRegistry::new(t0.clone()));
        let server = TreeServer::start(
            Arc::clone(&registry),
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        for k in 0..30 {
            handle.submit(req_features(k));
        }
        registry.publish(t1.clone());
        for k in 30..60 {
            handle.submit(req_features(k));
        }
        let responses = handle.collect();
        assert_eq!(responses.len(), 60);
        let sources = [t0, t1];
        let mut late_epoch_seen = false;
        for resp in &responses {
            let oracle = &sources[resp.epoch as usize];
            assert_eq!(
                resp.prediction,
                oracle.predict(&req_features(resp.id)),
                "epoch {} answer diverges from its own tree",
                resp.epoch
            );
            late_epoch_seen |= resp.epoch == 1;
        }
        // Requests submitted after the publish must see the new epoch
        // (the swap completed before they were enqueued).
        assert!(late_epoch_seen, "post-swap requests never saw epoch 1");
        assert!(responses[59].epoch == 1);
        let report = server.shutdown();
        assert_eq!(report.served, 60);
        assert_eq!(report.per_epoch.iter().map(|(_, c)| c).sum::<u64>(), 60);
    }

    /// An ensemble epoch served through the engine answers exactly like
    /// the offline `Forest` oracle, and a mid-stream swap from tree to
    /// forest buckets latency under both ensemble widths.
    #[test]
    fn forest_epochs_serve_majority_votes_and_bucket_latency_by_width() {
        let t0 = staircase_tree(5);
        // Same kind (5 classes), different shapes: vary the leaf budget.
        let members: Vec<DecisionTree> = [16usize, 8, 5]
            .iter()
            .map(|&leaves| {
                let x: Vec<Vec<f64>> = (0..120)
                    .map(|i| vec![i as f64 / 120.0, (i % 7) as f64])
                    .collect();
                let y: Vec<usize> = (0..120).map(|i| i * 5 / 120).collect();
                fit(
                    &Dataset::classification(x, y, 5).unwrap(),
                    &TreeConfig {
                        max_leaf_nodes: leaves,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
            .collect();
        let ensemble = crate::ServedModel::from_trees(members.clone()).unwrap();
        let forest = metis_dt::Forest::from_trees(&members).unwrap();
        let registry = Arc::new(ModelRegistry::new(t0.clone()));
        let server = TreeServer::start(
            Arc::clone(&registry),
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        for k in 0..25 {
            handle.submit(req_features(k));
        }
        registry.publish_model(ensemble);
        for k in 25..60 {
            handle.submit(req_features(k));
        }
        let responses = handle.collect();
        assert_eq!(responses.len(), 60);
        let mut forest_served = false;
        for resp in &responses {
            match resp.epoch {
                0 => assert_eq!(resp.prediction, t0.predict(&req_features(resp.id))),
                1 => {
                    assert_eq!(
                        resp.prediction,
                        forest.predict(&req_features(resp.id)),
                        "forest epoch answer diverges from the offline oracle"
                    );
                    forest_served = true;
                }
                e => panic!("unexpected epoch {e}"),
            }
        }
        assert!(forest_served, "post-swap requests never saw the ensemble");
        let report = server.shutdown();
        assert_eq!(report.served, 60);
        let widths: Vec<usize> = report.per_width.iter().map(|(w, _)| *w).collect();
        assert!(widths.contains(&3), "3-tree bucket missing: {widths:?}");
        assert_eq!(
            report
                .per_width
                .iter()
                .map(|(_, s)| s.count as u64)
                .sum::<u64>(),
            60,
            "width buckets must partition the served requests"
        );
    }

    #[test]
    #[should_panic(expected = "features")]
    fn malformed_submit_panics_in_the_client_not_the_batcher() {
        let tree = staircase_tree(3);
        let server = TreeServer::start(Arc::new(ModelRegistry::new(tree)), ServeConfig::default());
        let mut handle = server.handle();
        assert_eq!(handle.n_features(), 2);
        let _ = handle.submit(vec![0.5]); // wrong width: dies here
    }

    #[test]
    fn large_batches_stripe_across_the_pool_bit_identically() {
        let tree = staircase_tree(6);
        for threads in [1usize, 3] {
            let server = TreeServer::start(
                Arc::new(ModelRegistry::new(tree.clone())),
                ServeConfig {
                    max_batch: 512,
                    max_delay: Duration::from_millis(20),
                    threads,
                    stripe_rows: 16,
                    ..Default::default()
                },
            );
            let mut handle = server.handle();
            for k in 0..300 {
                handle.submit(req_features(k));
            }
            for resp in handle.collect() {
                assert_eq!(resp.prediction, tree.predict(&req_features(resp.id)));
            }
            server.shutdown();
        }
    }

    /// The drain-ordering audit: several servers sharing one pool group
    /// (fabric shards under a single tenant), all with deep queues, shut
    /// down while the others are still flushing. Every server must drain
    /// its own queue completely — shared-group ticketing may reorder
    /// helpers but can never starve a sibling's drain — and answers stay
    /// bit-identical throughout.
    #[test]
    fn shared_group_servers_drain_fully_on_shutdown() {
        let tree = staircase_tree(5);
        let group = metis_nn::par::fresh_group();
        let servers: Vec<TreeServer> = (0..3)
            .map(|_| {
                TreeServer::start(
                    Arc::new(ModelRegistry::new(tree.clone())),
                    ServeConfig {
                        max_batch: 32,
                        max_delay: Duration::from_secs(10), // drain path only
                        stripe_rows: 4,
                        group: Some(group),
                        ..Default::default()
                    },
                )
            })
            .collect();
        let mut handles: Vec<ServerHandle> = servers.iter().map(|s| s.handle()).collect();
        for (s, handle) in handles.iter_mut().enumerate() {
            for k in 0..150u64 {
                handle.submit(req_features(k.wrapping_add(s as u64 * 37)));
            }
        }
        // Shut all three down concurrently: each batcher flushes its
        // backlog through the shared group at the same time.
        std::thread::scope(|scope| {
            let collectors: Vec<_> = handles
                .into_iter()
                .enumerate()
                .map(|(s, mut handle)| {
                    let tree = &tree;
                    scope.spawn(move || {
                        let responses = handle.collect();
                        assert_eq!(responses.len(), 150, "server {s} dropped requests");
                        for resp in &responses {
                            assert_eq!(
                                resp.prediction,
                                tree.predict(&req_features(resp.id.wrapping_add(s as u64 * 37)))
                            );
                        }
                    })
                })
                .collect();
            for (s, server) in servers.into_iter().enumerate() {
                let report = server.shutdown();
                assert_eq!(report.served, 150, "server {s} under-served");
                assert_eq!(report.delivery_failures, 0);
            }
            for c in collectors {
                c.join().unwrap();
            }
        });
    }

    /// The drain-ordering regression this PR's audit found: a shutdown
    /// marker landing exactly on a batch boundary used to make the outer
    /// `recv` exit without draining, dropping every request queued behind
    /// the marker; a second marker mid-queue used to truncate the drain
    /// the same way. Pre-filling the queue before the batcher runs makes
    /// the interleaving deterministic.
    #[test]
    fn requests_behind_shutdown_markers_still_drain() {
        let tree = staircase_tree(4);
        let registry = Arc::new(ModelRegistry::new(tree.clone()));
        let (tx, rx) = channel();
        let (reply_tx, reply_rx) = channel();
        for k in 0..30u64 {
            // Marker after request 7 lands exactly on the max_batch=8
            // boundary (the outer-recv path); the one after 19 lands
            // mid-queue during the drain (the skip path).
            tx.send(Msg::Req(Request {
                id: k,
                features: req_features(k),
                submitted: 0.0,
                reply: reply_tx.clone(),
            }))
            .unwrap();
            if k == 7 || k == 19 {
                tx.send(Msg::Shutdown).unwrap();
            }
        }
        drop(tx);
        let log = batcher_loop(
            rx,
            registry,
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_secs(10),
                ..Default::default()
            },
            Clock::real(),
        );
        assert_eq!(log.served, 30, "requests behind a marker were dropped");
        let mut ids: Vec<u64> = (0..30).map(|_| reply_rx.recv().unwrap().id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u64>>());
    }
}
