//! Latency capture and percentile summaries — the SLO-accounting
//! vocabulary of the serving engine, reused by `metis_core::deploy` for
//! its per-decision measurements.

use serde::{Deserialize, Serialize};

/// Percentile summary of a latency sample set (seconds). Percentiles use
/// the floor-index convention (`samples[floor(p/100 * (len-1))]` of the
/// sorted samples) so they match the historical `deploy::measure_latency`
/// numbers exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: usize,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
}

impl LatencySummary {
    /// The all-zero summary of an empty sample set.
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_s: 0.0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            max_s: 0.0,
        }
    }

    /// True when `p99 <= budget_s` — the serving SLO check.
    pub fn meets_p99_slo(&self, budget_s: f64) -> bool {
        self.count > 0 && self.p99_s <= budget_s
    }

    /// Combine two summaries into one covering both sample sets. `count`,
    /// `mean_s`, and `max_s` are exact (count-weighted mean; `total_cmp`
    /// max, so a NaN-inflated tail stays inflated across the merge). The
    /// percentiles are a **heuristic**: the larger of the two inputs.
    /// That tracks the union's tail well when each input holds many
    /// samples relative to `1/(1-p)`, but for tiny inputs the floor-index
    /// convention can make it *understate* the union percentile (two
    /// 2-sample sets each report their fast sample as p99). Exact
    /// percentiles of a union need the raw samples — merge
    /// [`LatencyRecorder`]s (see [`LatencyRecorder::merge`]) wherever a
    /// decision rides on the result, as the fabric's per-scenario and
    /// per-tenant SLO reports do; treat a summary-level merge as a
    /// display rollup only.
    pub fn merge(&self, other: &LatencySummary) -> LatencySummary {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let max_by_total = |a: f64, b: f64| if a.total_cmp(&b).is_ge() { a } else { b };
        let count = self.count + other.count;
        LatencySummary {
            count,
            mean_s: (self.mean_s * self.count as f64 + other.mean_s * other.count as f64)
                / count as f64,
            p50_s: max_by_total(self.p50_s, other.p50_s),
            p95_s: max_by_total(self.p95_s, other.p95_s),
            p99_s: max_by_total(self.p99_s, other.p99_s),
            max_s: max_by_total(self.max_s, other.max_s),
        }
    }
}

/// Summarize a latency sample set (seconds). Sorts a copy; NaN samples
/// order last via `total_cmp`, so a poisoned sample inflates the tail
/// percentiles instead of silently vanishing.
pub fn summarize(samples: &[f64]) -> LatencySummary {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    summarize_sorted(&sorted)
}

/// [`summarize`] over samples the caller already sorted (`total_cmp`
/// order) — skips the copy and re-sort.
pub fn summarize_sorted(sorted: &[f64]) -> LatencySummary {
    if sorted.is_empty() {
        return LatencySummary::empty();
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
        "summarize_sorted: samples not in total_cmp order"
    );
    let pct =
        |p: f64| sorted[((p / 100.0 * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
    LatencySummary {
        count: sorted.len(),
        mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_s: pct(50.0),
        p95_s: pct(95.0),
        p99_s: pct(99.0),
        max_s: *sorted.last().unwrap(),
    }
}

/// Accumulates per-request latencies. Single-writer by design (the
/// engine's batcher thread owns one); summarization is on demand.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples_s: Vec<f64>,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample in seconds.
    pub fn record(&mut self, seconds: f64) {
        self.samples_s.push(seconds);
    }

    /// Record the span between two [`crate::Clock`] readings (seconds) —
    /// a submit stamp and a completion stamp from the same clock, real or
    /// virtual. The subtraction lives here so every recorder in the
    /// engine and the fabric turns clock readings into samples the same
    /// way.
    ///
    /// A completion stamp earlier than its submit stamp is a caller bug
    /// (stamps from two different clocks, or a rewound time source): it
    /// trips a debug assertion, and in release builds the span **clamps
    /// to zero** rather than silently recording negative latency —
    /// negative samples would deflate the mean and the low percentiles
    /// of every summary downstream. NaN stamps pass through unclamped
    /// (`NaN < 0.0` is false), preserving the NaN-poisons-the-tail
    /// contract of [`summarize`].
    pub fn record_span(&mut self, submitted_s: f64, completed_s: f64) -> f64 {
        let raw_s = completed_s - submitted_s;
        debug_assert!(
            raw_s >= 0.0 || raw_s.is_nan(),
            "record_span: completion stamp {completed_s} earlier than submit stamp {submitted_s}"
        );
        let span_s = if raw_s < 0.0 { 0.0 } else { raw_s };
        self.samples_s.push(span_s);
        span_s
    }

    pub fn len(&self) -> usize {
        self.samples_s.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_s.is_empty()
    }

    /// The raw samples, in capture order.
    pub fn samples_s(&self) -> &[f64] {
        &self.samples_s
    }

    /// Fold another recorder's samples into this one. Unlike
    /// [`LatencySummary::merge`] this is **exact**: the merged summary is
    /// the summary of the union sample set, which is how the fabric turns
    /// per-shard recorders into one per-scenario/per-tenant report.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_s.extend_from_slice(&other.samples_s);
    }

    /// Percentile summary of everything recorded so far.
    pub fn summary(&self) -> LatencySummary {
        summarize(&self.samples_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.summary(), LatencySummary::empty());
        assert!(!rec.summary().meets_p99_slo(1.0), "empty set meets no SLO");
    }

    #[test]
    fn percentiles_follow_floor_index_convention() {
        // 0..100 ms: p50 floor-index = samples[49], p99 = samples[98].
        let samples: Vec<f64> = (0..100).map(|i| i as f64 * 1e-3).collect();
        let s = summarize(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50_s - 0.049).abs() < 1e-12, "p50 {}", s.p50_s);
        assert!((s.p95_s - 0.094).abs() < 1e-12, "p95 {}", s.p95_s);
        assert!((s.p99_s - 0.098).abs() < 1e-12, "p99 {}", s.p99_s);
        assert!((s.max_s - 0.099).abs() < 1e-12);
        assert!((s.mean_s - 0.0495).abs() < 1e-12);
    }

    #[test]
    fn record_span_subtracts_clock_readings() {
        let mut rec = LatencyRecorder::new();
        assert_eq!(rec.record_span(1.5, 4.0), 2.5);
        assert_eq!(rec.record_span(3.0, 3.0), 0.0);
        assert_eq!(rec.samples_s(), &[2.5, 0.0]);
    }

    #[test]
    fn capture_order_does_not_matter() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        for i in 0..50 {
            a.record(i as f64);
            b.record((49 - i) as f64);
        }
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.samples_s().len(), 50);
    }

    #[test]
    fn slo_check_uses_p99() {
        // 4 samples: p99 floor-index = 2 -> 0.002 (the max stays separate).
        let s = summarize(&[0.001, 0.001, 0.002, 0.010]);
        assert!((s.p99_s - 0.002).abs() < 1e-12);
        assert!(s.meets_p99_slo(0.002));
        assert!(!s.meets_p99_slo(0.001));
        assert!((s.max_s - 0.010).abs() < 1e-12);
    }

    #[test]
    fn nan_samples_inflate_the_tail_not_vanish() {
        let s = summarize(&[0.001, f64::NAN, 0.002]);
        assert_eq!(s.count, 3);
        assert!(s.max_s.is_nan(), "NaN must surface in max");
    }

    #[test]
    fn recorder_merge_is_exact() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        let mut all = LatencyRecorder::new();
        for i in 0..40 {
            let s = (i as f64).sin().abs() * 1e-3;
            if i % 3 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a.len(), 40);
        assert_eq!(a.summary(), all.summary(), "merged summary must be exact");
    }

    #[test]
    fn summary_merge_empty_and_single_sample_edges() {
        let empty = LatencySummary::empty();
        assert_eq!(empty.merge(&empty), empty);
        // Empty is the identity: merging must not drag zeros into the
        // percentiles or the mean.
        let one = summarize(&[0.5]);
        assert_eq!(empty.merge(&one), one);
        assert_eq!(one.merge(&empty), one);
        // Two single-sample summaries: exact count/mean/max, upper-bound
        // percentiles.
        let other = summarize(&[0.1]);
        let merged = one.merge(&other);
        assert_eq!(merged.count, 2);
        assert!((merged.mean_s - 0.3).abs() < 1e-12);
        assert_eq!(merged.max_s, 0.5);
        assert_eq!(merged.p99_s, 0.5);
    }

    #[test]
    fn summary_merge_tracks_the_union_for_well_sampled_inputs() {
        // Inputs large relative to 1/(1-p): the max-of-inputs heuristic
        // must not understate the union's tail here.
        let fast: Vec<f64> = (0..80).map(|i| i as f64 * 1e-4).collect();
        let slow: Vec<f64> = (0..20).map(|i| 0.01 + i as f64 * 1e-3).collect();
        let merged = summarize(&fast).merge(&summarize(&slow));
        let union: Vec<f64> = fast.iter().chain(slow.iter()).copied().collect();
        let exact = summarize(&union);
        assert_eq!(merged.count, exact.count);
        assert!((merged.mean_s - exact.mean_s).abs() < 1e-12);
        assert_eq!(merged.max_s, exact.max_s);
        for (rolled, true_pct) in [
            (merged.p50_s, exact.p50_s),
            (merged.p95_s, exact.p95_s),
            (merged.p99_s, exact.p99_s),
        ] {
            assert!(rolled >= true_pct, "well-sampled rollup understated a tail");
        }
    }

    /// The documented limitation, pinned so nobody mistakes the rollup
    /// for a bound: with tiny inputs the floor-index convention makes
    /// max-of-percentiles *understate* the union tail (each 2-sample set
    /// reports its fast sample as p99) — exact tails need the recorder
    /// merge. `max_s` stays exact either way.
    #[test]
    fn summary_merge_percentiles_are_not_a_bound_for_tiny_inputs() {
        let a = summarize(&[1e-6, 1e-2]);
        let b = summarize(&[1e-6, 1e-2]);
        let merged = a.merge(&b);
        let exact = summarize(&[1e-6, 1e-6, 1e-2, 1e-2]);
        assert!(merged.p99_s < exact.p99_s, "the heuristic understates here");
        assert_eq!(merged.max_s, exact.max_s);
        let mut recorder = LatencyRecorder::new();
        recorder.record(1e-6);
        recorder.record(1e-2);
        let mut other = LatencyRecorder::new();
        other.record(1e-6);
        other.record(1e-2);
        recorder.merge(&other);
        assert_eq!(recorder.summary(), exact, "recorder merge stays exact");
    }

    #[test]
    fn nan_inflated_tail_survives_both_merges() {
        // Summary-level: total_cmp keeps NaN as the merged max even
        // though f64::max would silently discard it.
        let poisoned = summarize(&[0.001, f64::NAN]);
        let clean = summarize(&[0.002, 0.003]);
        for merged in [poisoned.merge(&clean), clean.merge(&poisoned)] {
            assert!(merged.max_s.is_nan(), "NaN tail vanished in merge");
            assert!(merged.mean_s.is_nan(), "NaN must poison the mean");
            assert_eq!(merged.count, 4);
        }
        // Recorder-level: the union sample set still carries the NaN.
        let mut rec = LatencyRecorder::new();
        rec.record(0.001);
        let mut poisoned_rec = LatencyRecorder::new();
        poisoned_rec.record(f64::NAN);
        rec.merge(&poisoned_rec);
        assert!(rec.summary().max_s.is_nan());
    }

    #[test]
    fn single_sample_summary() {
        let s = summarize(&[0.5]);
        assert_eq!(s.p50_s, 0.5);
        assert_eq!(s.p99_s, 0.5);
        assert_eq!(s.max_s, 0.5);
        assert_eq!(s.count, 1);
    }

    /// Debug builds reject a completion stamp earlier than its submit
    /// stamp outright — the silent-negative-latency regression.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "earlier than submit stamp")]
    fn record_span_rejects_negative_spans_in_debug() {
        LatencyRecorder::new().record_span(2.0, 1.0);
    }

    /// Release builds clamp the same bug to zero instead of deflating
    /// the summary with a negative sample.
    #[cfg(not(debug_assertions))]
    #[test]
    fn record_span_clamps_negative_spans_in_release() {
        let mut rec = LatencyRecorder::new();
        assert_eq!(rec.record_span(2.0, 1.0), 0.0);
        assert_eq!(rec.samples_s(), &[0.0]);
        assert!(rec.summary().mean_s >= 0.0);
    }

    #[test]
    fn record_span_passes_nan_through_unclamped() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.record_span(1.0, f64::NAN).is_nan());
        assert!(
            rec.summary().max_s.is_nan(),
            "NaN span must poison the tail"
        );
    }
}

#[cfg(test)]
mod summarize_order_props {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Field-wise bitwise equality — `PartialEq` would reject the
    /// NaN-poisoned summaries this property must also cover.
    fn assert_summary_bits(a: LatencySummary, b: LatencySummary) {
        assert_eq!(a.count, b.count);
        for (x, y, field) in [
            (a.mean_s, b.mean_s, "mean_s"),
            (a.p50_s, b.p50_s, "p50_s"),
            (a.p95_s, b.p95_s, "p95_s"),
            (a.p99_s, b.p99_s, "p99_s"),
            (a.max_s, b.max_s, "max_s"),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{field} diverges: {x} vs {y}");
        }
    }

    proptest! {
        /// `summarize(xs)` must equal `summarize_sorted` of the
        /// `total_cmp`-sorted samples, bit for bit, for **any** capture
        /// order — including NaN-salted sample sets, whose NaNs order
        /// last and inflate the tail identically on both paths.
        #[test]
        fn prop_summarize_is_order_independent(
            n in 1usize..120,
            shuffle_seed in 0u64..10_000,
            nan_every in 0usize..8,
        ) {
            let mut rng = StdRng::seed_from_u64(shuffle_seed ^ 0xA5A5);
            let mut samples: Vec<f64> = (0..n)
                .map(|k| {
                    if nan_every > 0 && k % (nan_every + 2) == nan_every {
                        f64::NAN
                    } else {
                        rng.gen_range(0.0..0.25)
                    }
                })
                .collect();
            // Deterministic Fisher–Yates shuffle into an arbitrary order.
            for i in (1..samples.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                samples.swap(i, j);
            }
            let via_unsorted = summarize(&samples);
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let via_sorted = summarize_sorted(&sorted);
            assert_summary_bits(via_unsorted, via_sorted);
            prop_assert_eq!(via_unsorted.count, n);
        }
    }
}
