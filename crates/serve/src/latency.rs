//! Latency capture and percentile summaries — the SLO-accounting
//! vocabulary of the serving engine, reused by `metis_core::deploy` for
//! its per-decision measurements.

use serde::Serialize;

/// Percentile summary of a latency sample set (seconds). Percentiles use
/// the floor-index convention (`samples[floor(p/100 * (len-1))]` of the
/// sorted samples) so they match the historical `deploy::measure_latency`
/// numbers exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    pub count: usize,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
}

impl LatencySummary {
    /// The all-zero summary of an empty sample set.
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_s: 0.0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            max_s: 0.0,
        }
    }

    /// True when `p99 <= budget_s` — the serving SLO check.
    pub fn meets_p99_slo(&self, budget_s: f64) -> bool {
        self.count > 0 && self.p99_s <= budget_s
    }
}

/// Summarize a latency sample set (seconds). Sorts a copy; NaN samples
/// order last via `total_cmp`, so a poisoned sample inflates the tail
/// percentiles instead of silently vanishing.
pub fn summarize(samples: &[f64]) -> LatencySummary {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    summarize_sorted(&sorted)
}

/// [`summarize`] over samples the caller already sorted (`total_cmp`
/// order) — skips the copy and re-sort.
pub fn summarize_sorted(sorted: &[f64]) -> LatencySummary {
    if sorted.is_empty() {
        return LatencySummary::empty();
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
        "summarize_sorted: samples not in total_cmp order"
    );
    let pct =
        |p: f64| sorted[((p / 100.0 * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
    LatencySummary {
        count: sorted.len(),
        mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_s: pct(50.0),
        p95_s: pct(95.0),
        p99_s: pct(99.0),
        max_s: *sorted.last().unwrap(),
    }
}

/// Accumulates per-request latencies. Single-writer by design (the
/// engine's batcher thread owns one); summarization is on demand.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_s: Vec<f64>,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample in seconds.
    pub fn record(&mut self, seconds: f64) {
        self.samples_s.push(seconds);
    }

    pub fn len(&self) -> usize {
        self.samples_s.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_s.is_empty()
    }

    /// The raw samples, in capture order.
    pub fn samples_s(&self) -> &[f64] {
        &self.samples_s
    }

    /// Percentile summary of everything recorded so far.
    pub fn summary(&self) -> LatencySummary {
        summarize(&self.samples_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.summary(), LatencySummary::empty());
        assert!(!rec.summary().meets_p99_slo(1.0), "empty set meets no SLO");
    }

    #[test]
    fn percentiles_follow_floor_index_convention() {
        // 0..100 ms: p50 floor-index = samples[49], p99 = samples[98].
        let samples: Vec<f64> = (0..100).map(|i| i as f64 * 1e-3).collect();
        let s = summarize(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50_s - 0.049).abs() < 1e-12, "p50 {}", s.p50_s);
        assert!((s.p95_s - 0.094).abs() < 1e-12, "p95 {}", s.p95_s);
        assert!((s.p99_s - 0.098).abs() < 1e-12, "p99 {}", s.p99_s);
        assert!((s.max_s - 0.099).abs() < 1e-12);
        assert!((s.mean_s - 0.0495).abs() < 1e-12);
    }

    #[test]
    fn capture_order_does_not_matter() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        for i in 0..50 {
            a.record(i as f64);
            b.record((49 - i) as f64);
        }
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.samples_s().len(), 50);
    }

    #[test]
    fn slo_check_uses_p99() {
        // 4 samples: p99 floor-index = 2 -> 0.002 (the max stays separate).
        let s = summarize(&[0.001, 0.001, 0.002, 0.010]);
        assert!((s.p99_s - 0.002).abs() < 1e-12);
        assert!(s.meets_p99_slo(0.002));
        assert!(!s.meets_p99_slo(0.001));
        assert!((s.max_s - 0.010).abs() < 1e-12);
    }

    #[test]
    fn nan_samples_inflate_the_tail_not_vanish() {
        let s = summarize(&[0.001, f64::NAN, 0.002]);
        assert_eq!(s.count, 3);
        assert!(s.max_s.is_nan(), "NaN must surface in max");
    }

    #[test]
    fn single_sample_summary() {
        let s = summarize(&[0.5]);
        assert_eq!(s.p50_s, 0.5);
        assert_eq!(s.p99_s, 0.5);
        assert_eq!(s.max_s, 0.5);
        assert_eq!(s.count, 1);
    }
}
