//! The hot-swap model registry: an epoch pointer the §3.2 conversion
//! pipeline can re-point mid-traffic.
//!
//! Readers ([`ModelRegistry::current`]) clone an `Arc` to the live
//! [`EpochModel`] under a read lock held for a pointer copy — they never
//! wait on a publisher compiling a tree (compilation happens *outside*
//! the lock; the swap itself is a single pointer store). In-flight
//! batches keep their `Arc`, so a swap never invalidates work already
//! dispatched: requests served from epoch `e` are answered by epoch `e`'s
//! tree, bit-identically to `DecisionTree::predict` on that tree.

use metis_dt::{CompiledTree, DecisionTree};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One published model generation: the compiled serving artifact plus the
/// source tree it was compiled from (the sequential oracle used by the
/// determinism tests and the swap bit-identity audit).
#[derive(Debug)]
pub struct EpochModel {
    pub epoch: u64,
    pub compiled: CompiledTree,
    pub source: DecisionTree,
}

/// Epoch-pointer registry. See the module docs for the swap contract.
pub struct ModelRegistry {
    current: RwLock<Arc<EpochModel>>,
    next_epoch: AtomicU64,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// Seed the registry with its epoch-0 model.
    pub fn new(initial: DecisionTree) -> Self {
        let compiled = CompiledTree::compile(&initial);
        ModelRegistry {
            current: RwLock::new(Arc::new(EpochModel {
                epoch: 0,
                compiled,
                source: initial,
            })),
            next_epoch: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
        }
    }

    /// Publish a newly fitted tree, returning its epoch. The tree is
    /// compiled before the lock is taken; the epoch is assigned and the
    /// pointer swapped under the same write lock, so concurrent
    /// publishers install strictly increasing epochs (later publish ⇒
    /// later epoch ⇒ the one readers see) and readers stall for at most
    /// a pointer store. Every epoch of a registry serves the same
    /// feature schema: a tree with a different `n_features` is rejected
    /// (queued requests were validated against the old width).
    pub fn publish(&self, tree: DecisionTree) -> u64 {
        let compiled = CompiledTree::compile(&tree);
        self.install(tree, compiled, None)
            .expect("unconditional publish cannot be superseded")
    }

    /// Compare-and-swap publish: install `tree` only if `expected_epoch`
    /// is still live, returning `None` (and installing nothing) when a
    /// concurrent publish moved the pointer first. The epoch check and
    /// the swap happen under one write lock, so an audited promotion can
    /// never clobber a model it was not audited against. The caller
    /// supplies the compiled artifact (shadow audits already hold one),
    /// so the lock covers no compile work.
    pub fn publish_if_current(
        &self,
        tree: DecisionTree,
        compiled: CompiledTree,
        expected_epoch: u64,
    ) -> Option<u64> {
        self.install(tree, compiled, Some(expected_epoch))
    }

    fn install(
        &self,
        tree: DecisionTree,
        compiled: CompiledTree,
        expected_epoch: Option<u64>,
    ) -> Option<u64> {
        let mut current = self.current.write().unwrap();
        if expected_epoch.is_some_and(|e| current.epoch != e) {
            return None;
        }
        assert_eq!(
            compiled.n_features(),
            current.compiled.n_features(),
            "publish: epoch {} serves {} features, new tree has {}",
            current.epoch,
            current.compiled.n_features(),
            compiled.n_features()
        );
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        *current = Arc::new(EpochModel {
            epoch,
            compiled,
            source: tree,
        });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Some(epoch)
    }

    /// The live model. The returned `Arc` pins its epoch for as long as
    /// the caller holds it — a concurrent [`ModelRegistry::publish`]
    /// never changes what this handle evaluates.
    pub fn current(&self) -> Arc<EpochModel> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Epoch of the live model.
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap().epoch
    }

    /// Feature width every epoch of this registry serves (invariant
    /// across swaps — [`ModelRegistry::publish`] enforces it).
    pub fn n_features(&self) -> usize {
        self.current.read().unwrap().compiled.n_features()
    }

    /// Number of completed hot swaps (publishes after the initial seed).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_dt::{fit, Dataset, TreeConfig};

    fn tree(shift: f64) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0 + shift]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let ds = Dataset::classification(x, y, 2).unwrap();
        fit(&ds, &TreeConfig::default()).unwrap()
    }

    #[test]
    fn publish_advances_epoch_and_swap_count() {
        let reg = ModelRegistry::new(tree(0.0));
        assert_eq!(reg.epoch(), 0);
        assert_eq!(reg.swap_count(), 0);
        assert_eq!(reg.publish(tree(0.1)), 1);
        assert_eq!(reg.publish(tree(0.2)), 2);
        assert_eq!(reg.epoch(), 2);
        assert_eq!(reg.swap_count(), 2);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn publish_rejects_a_different_feature_width() {
        let reg = ModelRegistry::new(tree(0.0));
        assert_eq!(reg.n_features(), 1);
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, -(i as f64)]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let wide = fit(
            &Dataset::classification(x, y, 2).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap();
        let _ = reg.publish(wide);
    }

    /// The shadow-promotion CAS: a publish conditioned on a stale epoch
    /// must install nothing, and the check races correctly under one
    /// write lock with unconditional publishes.
    #[test]
    fn conditional_publish_refuses_a_moved_epoch() {
        let reg = ModelRegistry::new(tree(0.0));
        let candidate = tree(0.1);
        let compiled = CompiledTree::compile(&candidate);
        // Live epoch matches: installs.
        assert_eq!(
            reg.publish_if_current(candidate.clone(), compiled.clone(), 0),
            Some(1)
        );
        // A hotfix lands…
        let hotfix_epoch = reg.publish(tree(0.2));
        assert_eq!(hotfix_epoch, 2);
        // …so a promotion audited against epoch 1 must refuse.
        assert_eq!(reg.publish_if_current(candidate, compiled, 1), None);
        assert_eq!(reg.epoch(), 2, "refused publish must install nothing");
        assert_eq!(reg.swap_count(), 2);
    }

    #[test]
    fn held_handle_pins_its_epoch_across_swaps() {
        let reg = ModelRegistry::new(tree(0.0));
        let pinned = reg.current();
        reg.publish(tree(0.3));
        assert_eq!(pinned.epoch, 0, "in-flight handle must keep its epoch");
        assert_eq!(reg.current().epoch, 1);
        // The pinned compiled model still answers from its own source tree.
        let x = [0.25];
        assert_eq!(
            pinned.compiled.predict_class(&x),
            pinned.source.predict_class(&x)
        );
    }

    #[test]
    fn concurrent_readers_see_a_consistent_epoch() {
        let reg = std::sync::Arc::new(ModelRegistry::new(tree(0.0)));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let reg = &reg;
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut last = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let m = reg.current();
                            assert!(m.epoch >= last, "epochs must be monotone per reader");
                            // The handle is internally consistent: compiled
                            // and source agree.
                            assert_eq!(
                                m.compiled.predict_class(&[0.1]),
                                m.source.predict_class(&[0.1])
                            );
                            last = m.epoch;
                        }
                        last
                    })
                })
                .collect();
            for k in 0..20 {
                reg.publish(tree(k as f64 * 0.01));
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().unwrap() <= 20);
            }
        });
        assert_eq!(reg.epoch(), 20);
    }
}
