//! The hot-swap model registry: an epoch pointer the §3.2 conversion
//! pipeline can re-point mid-traffic.
//!
//! Readers ([`ModelRegistry::current`]) clone an `Arc` to the live
//! [`EpochModel`] under a read lock held for a pointer copy — they never
//! wait on a publisher compiling a model (compilation happens *outside*
//! the lock; the swap itself is a single pointer store). In-flight
//! batches keep their `Arc`, so a swap never invalidates work already
//! dispatched: requests served from epoch `e` are answered by epoch `e`'s
//! model, bit-identically to the sequential oracle on that model.
//!
//! An epoch's model is a [`ServedModel`]: either one compiled tree (the
//! original serving shape) or a [`Forest`] majority-vote ensemble — the
//! registry, the engine flush, and the fabric's shadow audit all operate
//! on this enum, so a scenario can hot-swap between shapes with the same
//! CAS / bit-exactness guarantees.

use crate::clock::Clock;
use metis_dt::{
    diff_predictions, BatchDiff, CompiledTree, DecisionTree, Forest, ForestError, Prediction,
    TreeKind,
};
use metis_telemetry::ShardTelemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// What an epoch actually serves: one compiled tree, or a majority-vote
/// [`Forest`] over several. Both carry their source trees (the sequential
/// oracles the determinism tests and swap bit-identity audits replay),
/// and both answer through the same lane-vectorized kernel, so a 1-tree
/// `Forest` is bit-identical to serving its tree directly.
// The variants differ in size (a `CompiledTree` is inline, a `Forest`
// holds its members behind a Vec), but the enum crosses function
// boundaries only at publish/stage time — served epochs hold it behind
// `Arc<EpochModel>` — so boxing the tree would tax every flush's
// dispatch for a move that happens once per epoch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ServedModel {
    /// A single compiled tree plus its source.
    Tree {
        compiled: CompiledTree,
        source: DecisionTree,
    },
    /// A block-major ensemble plus its member sources, in vote order.
    Forest {
        forest: Forest,
        sources: Vec<DecisionTree>,
    },
}

impl ServedModel {
    /// Compile a single-tree model.
    pub fn from_tree(source: DecisionTree) -> ServedModel {
        let compiled = CompiledTree::compile(&source);
        ServedModel::Tree { compiled, source }
    }

    /// Compile a majority-vote ensemble from source trees (vote order =
    /// slice order). Fails unless all trees agree on kind and width.
    pub fn from_trees(sources: Vec<DecisionTree>) -> Result<ServedModel, ForestError> {
        let forest = Forest::from_trees(&sources)?;
        Ok(ServedModel::Forest { forest, sources })
    }

    /// Feature width every row served by this model must have.
    pub fn n_features(&self) -> usize {
        match self {
            ServedModel::Tree { compiled, .. } => compiled.n_features(),
            ServedModel::Forest { forest, .. } => forest.n_features(),
        }
    }

    /// Kind shared by every member (class count for classifiers).
    pub fn kind(&self) -> TreeKind {
        match self {
            ServedModel::Tree { compiled, .. } => compiled.kind(),
            ServedModel::Forest { forest, .. } => forest.kind(),
        }
    }

    /// Ensemble width: 1 for a single tree, `k` for a forest.
    pub fn n_trees(&self) -> usize {
        match self {
            ServedModel::Tree { .. } => 1,
            ServedModel::Forest { forest, .. } => forest.n_trees(),
        }
    }

    /// The source trees this model was compiled from, in vote order.
    pub fn source_trees(&self) -> &[DecisionTree] {
        match self {
            ServedModel::Tree { source, .. } => std::slice::from_ref(source),
            ServedModel::Forest { sources, .. } => sources,
        }
    }

    /// Predict one feature vector (majority vote for forests).
    pub fn predict(&self, x: &[f64]) -> Prediction {
        match self {
            ServedModel::Tree { compiled, .. } => compiled.predict(x),
            ServedModel::Forest { forest, .. } => forest.predict(x),
        }
    }

    /// Batched prediction over a row-major block into a caller-owned
    /// buffer (`rows.len() == out.len() * n_features()`) — the engine
    /// flush path, which reuses one scratch buffer across flushes.
    pub fn predict_batch_into(&self, rows: &[f64], out: &mut [Prediction]) {
        match self {
            ServedModel::Tree { compiled, .. } => compiled.predict_batch_into(rows, out),
            ServedModel::Forest { forest, .. } => forest.predict_batch_into(rows, out),
        }
    }

    /// [`ServedModel::predict_batch_into`] into a fresh vector.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<Prediction> {
        match self {
            ServedModel::Tree { compiled, .. } => compiled.predict_batch(rows),
            ServedModel::Forest { forest, .. } => forest.predict_batch(rows),
        }
    }

    /// Bit-exact response diff against another served model over a
    /// row-major block — the shadow-audit primitive, shared verbatim
    /// (via [`diff_predictions`]) with [`CompiledTree::diff_batch`], so
    /// single-tree and ensemble promotions use identical semantics.
    /// Models of different kinds mismatch on every row; a different
    /// feature width panics (rows can't be valid for both).
    pub fn diff_batch(&self, other: &ServedModel, rows: &[f64]) -> BatchDiff {
        assert_eq!(
            self.n_features(),
            other.n_features(),
            "diff_batch: models take {} vs {} features",
            self.n_features(),
            other.n_features()
        );
        diff_predictions(&self.predict_batch(rows), &other.predict_batch(rows))
    }
}

/// One published model generation: the served artifact (tree or ensemble)
/// tagged with its registry epoch.
#[derive(Debug)]
pub struct EpochModel {
    pub epoch: u64,
    pub model: ServedModel,
}

/// A telemetry scope attached to a registry: publishes record their
/// hot-swap span/event on it, stamped from the given clock.
struct TelemetryHook {
    scope: Arc<ShardTelemetry>,
    clock: Arc<Clock>,
}

/// Epoch-pointer registry. See the module docs for the swap contract.
pub struct ModelRegistry {
    current: RwLock<Arc<EpochModel>>,
    next_epoch: AtomicU64,
    swaps: AtomicU64,
    telemetry: Mutex<Option<TelemetryHook>>,
}

impl ModelRegistry {
    /// Seed the registry with its epoch-0 single-tree model.
    pub fn new(initial: DecisionTree) -> Self {
        Self::new_model(ServedModel::from_tree(initial))
    }

    /// Seed the registry with an arbitrary epoch-0 model (e.g. a forest).
    pub fn new_model(initial: ServedModel) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(EpochModel {
                epoch: 0,
                model: initial,
            })),
            next_epoch: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
            telemetry: Mutex::new(None),
        }
    }

    /// Attach a live telemetry scope (normally a scenario's **control
    /// scope**): every subsequent publish records its hot-swap span and
    /// flight event there, stamped from `clock`. Under a virtual clock
    /// the swap cost is reported as 0 (a schedule event has no wall
    /// duration), keeping the event stream deterministic; under a real
    /// clock the cost spans compile + pointer swap.
    pub fn attach_telemetry(&self, scope: Arc<ShardTelemetry>, clock: Arc<Clock>) {
        *self.telemetry.lock().unwrap() = Some(TelemetryHook { scope, clock });
    }

    /// Wall stamp at publish entry, read only when a real-clock scope is
    /// attached — virtual publishes must never take live clock readings
    /// for durations.
    fn publish_start_s(&self) -> Option<f64> {
        let guard = self.telemetry.lock().unwrap();
        guard
            .as_ref()
            .and_then(|h| (!h.clock.is_virtual()).then(|| h.clock.now_s()))
    }

    /// Publish a newly fitted tree, returning its epoch. The tree is
    /// compiled before the lock is taken; the epoch is assigned and the
    /// pointer swapped under the same write lock, so concurrent
    /// publishers install strictly increasing epochs (later publish ⇒
    /// later epoch ⇒ the one readers see) and readers stall for at most
    /// a pointer store. Every epoch of a registry serves the same
    /// feature schema: a model with a different `n_features` is rejected
    /// (queued requests were validated against the old width).
    pub fn publish(&self, tree: DecisionTree) -> u64 {
        // Stamp before the compile so the reported swap cost covers it.
        let started_s = self.publish_start_s();
        self.install(ServedModel::from_tree(tree), None, started_s)
            .expect("unconditional publish cannot be superseded")
    }

    /// Publish an already-compiled model (tree or ensemble) — the same
    /// compile-outside-lock contract as [`ModelRegistry::publish`];
    /// callers holding source trees for a forest compile via
    /// [`ServedModel::from_trees`] first.
    pub fn publish_model(&self, model: ServedModel) -> u64 {
        let started_s = self.publish_start_s();
        self.install(model, None, started_s)
            .expect("unconditional publish cannot be superseded")
    }

    /// Compare-and-swap publish: install `model` only if `expected_epoch`
    /// is still live, returning `None` (and installing nothing) when a
    /// concurrent publish moved the pointer first. The epoch check and
    /// the swap happen under one write lock, so an audited promotion can
    /// never clobber a model it was not audited against. The caller
    /// supplies the compiled artifact (shadow audits already hold one),
    /// so the lock covers no compile work.
    pub fn publish_if_current(&self, model: ServedModel, expected_epoch: u64) -> Option<u64> {
        let started_s = self.publish_start_s();
        self.install(model, Some(expected_epoch), started_s)
    }

    fn install(
        &self,
        model: ServedModel,
        expected_epoch: Option<u64>,
        started_s: Option<f64>,
    ) -> Option<u64> {
        let mut current = self.current.write().unwrap();
        if expected_epoch.is_some_and(|e| current.epoch != e) {
            return None;
        }
        assert_eq!(
            model.n_features(),
            current.model.n_features(),
            "publish: epoch {} serves {} features, new model has {}",
            current.epoch,
            current.model.n_features(),
            model.n_features()
        );
        let width = model.n_trees();
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        *current = Arc::new(EpochModel { epoch, model });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        // Recorded while the write lock serializes publishers, so swap
        // events land in epoch order on the scope.
        if let Some(hook) = self.telemetry.lock().unwrap().as_ref() {
            let (start_s, cost_s) = if hook.clock.is_virtual() {
                (hook.clock.now_s(), 0.0)
            } else {
                let now_s = hook.clock.now_s();
                let start_s = started_s.unwrap_or(now_s);
                (start_s, (now_s - start_s).max(0.0))
            };
            hook.scope.on_hot_swap(start_s, epoch, width, cost_s);
        }
        Some(epoch)
    }

    /// The live model. The returned `Arc` pins its epoch for as long as
    /// the caller holds it — a concurrent [`ModelRegistry::publish`]
    /// never changes what this handle evaluates.
    pub fn current(&self) -> Arc<EpochModel> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Epoch of the live model.
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap().epoch
    }

    /// Feature width every epoch of this registry serves (invariant
    /// across swaps — [`ModelRegistry::publish`] enforces it).
    pub fn n_features(&self) -> usize {
        self.current.read().unwrap().model.n_features()
    }

    /// Number of completed hot swaps (publishes after the initial seed).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_dt::{fit, Dataset, TreeConfig};

    fn tree(shift: f64) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0 + shift]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let ds = Dataset::classification(x, y, 2).unwrap();
        fit(&ds, &TreeConfig::default()).unwrap()
    }

    #[test]
    fn publish_advances_epoch_and_swap_count() {
        let reg = ModelRegistry::new(tree(0.0));
        assert_eq!(reg.epoch(), 0);
        assert_eq!(reg.swap_count(), 0);
        assert_eq!(reg.publish(tree(0.1)), 1);
        assert_eq!(reg.publish(tree(0.2)), 2);
        assert_eq!(reg.epoch(), 2);
        assert_eq!(reg.swap_count(), 2);
    }

    #[test]
    fn forest_epochs_swap_like_tree_epochs() {
        let reg = ModelRegistry::new(tree(0.0));
        let ensemble = ServedModel::from_trees(vec![tree(0.0), tree(0.1), tree(0.2)]).unwrap();
        assert_eq!(ensemble.n_trees(), 3);
        assert_eq!(reg.publish_model(ensemble), 1);
        assert_eq!(reg.current().model.n_trees(), 3);
        // And back to a single tree — shape changes ride the same pointer.
        assert_eq!(reg.publish(tree(0.3)), 2);
        assert_eq!(reg.current().model.n_trees(), 1);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn publish_rejects_a_different_feature_width() {
        let reg = ModelRegistry::new(tree(0.0));
        assert_eq!(reg.n_features(), 1);
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, -(i as f64)]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let wide = fit(
            &Dataset::classification(x, y, 2).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap();
        let _ = reg.publish(wide);
    }

    /// The shadow-promotion CAS: a publish conditioned on a stale epoch
    /// must install nothing, and the check races correctly under one
    /// write lock with unconditional publishes.
    #[test]
    fn conditional_publish_refuses_a_moved_epoch() {
        let reg = ModelRegistry::new(tree(0.0));
        let candidate = ServedModel::from_tree(tree(0.1));
        // Live epoch matches: installs.
        assert_eq!(reg.publish_if_current(candidate.clone(), 0), Some(1));
        // A hotfix lands…
        let hotfix_epoch = reg.publish(tree(0.2));
        assert_eq!(hotfix_epoch, 2);
        // …so a promotion audited against epoch 1 must refuse.
        assert_eq!(reg.publish_if_current(candidate, 1), None);
        assert_eq!(reg.epoch(), 2, "refused publish must install nothing");
        assert_eq!(reg.swap_count(), 2);
    }

    /// An attached control scope sees every publish as a hot-swap event
    /// and a publish-stage span; under a virtual clock the cost is 0
    /// and the stamp is the schedule time — fully deterministic.
    #[test]
    fn attached_scope_records_hot_swaps() {
        use metis_telemetry::{Stage, Telemetry, CONTROL_SHARD};
        let reg = ModelRegistry::new(tree(0.0));
        let telemetry = Telemetry::enabled();
        let scope = telemetry.register("abr", CONTROL_SHARD, "gold").unwrap();
        let clock = Clock::virtual_at(3.0);
        reg.attach_telemetry(Arc::clone(&scope), Arc::clone(&clock));
        reg.publish(tree(0.1));
        reg.publish_model(ServedModel::from_trees(vec![tree(0.0), tree(0.1), tree(0.2)]).unwrap());
        // A refused CAS publish must record nothing.
        assert_eq!(
            reg.publish_if_current(ServedModel::from_tree(tree(0.3)), 0),
            None
        );
        let events = scope.events.events();
        assert_eq!(events.len(), 2, "one event per completed swap");
        for (event, (want_epoch, want_trees)) in events.iter().zip([(1u64, 1usize), (2, 3)]) {
            assert_eq!(event.time_s, 3.0, "stamped at virtual schedule time");
            match &event.kind {
                metis_telemetry::EventKind::HotSwap {
                    epoch,
                    trees,
                    cost_s,
                } => {
                    assert_eq!(*epoch, want_epoch);
                    assert_eq!(*trees, want_trees);
                    assert_eq!(*cost_s, 0.0, "virtual swaps cost no wall time");
                }
                other => panic!("expected HotSwap, got {other:?}"),
            }
        }
        assert_eq!(scope.stage_sketch(Stage::Publish).count(), 2);
        assert_eq!(scope.spans.len(), 2);
    }

    #[test]
    fn held_handle_pins_its_epoch_across_swaps() {
        let reg = ModelRegistry::new(tree(0.0));
        let pinned = reg.current();
        reg.publish(tree(0.3));
        assert_eq!(pinned.epoch, 0, "in-flight handle must keep its epoch");
        assert_eq!(reg.current().epoch, 1);
        // The pinned model still answers from its own source tree.
        let x = [0.25];
        assert_eq!(
            pinned.model.predict(&x),
            pinned.model.source_trees()[0].predict(&x)
        );
    }

    #[test]
    fn concurrent_readers_see_a_consistent_epoch() {
        let reg = std::sync::Arc::new(ModelRegistry::new(tree(0.0)));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let reg = &reg;
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut last = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let m = reg.current();
                            assert!(m.epoch >= last, "epochs must be monotone per reader");
                            // The handle is internally consistent: the
                            // served model and its source agree.
                            assert_eq!(
                                m.model.predict(&[0.1]),
                                m.model.source_trees()[0].predict(&[0.1])
                            );
                            last = m.epoch;
                        }
                        last
                    })
                })
                .collect();
            for k in 0..20 {
                reg.publish(tree(k as f64 * 0.01));
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().unwrap() <= 20);
            }
        });
        assert_eq!(reg.epoch(), 20);
    }

    /// The compile-outside-lock claim, pinned: while writer threads
    /// publish a mix of single-tree and forest epochs, every model a
    /// reader observes is fully compiled — its served answers match its
    /// own source trees' sequential oracle on every probe, for every
    /// handle ever returned. A torn or half-installed epoch would
    /// diverge.
    #[test]
    fn readers_only_observe_fully_compiled_epochs_during_concurrent_publishes() {
        let reg = std::sync::Arc::new(ModelRegistry::new(tree(0.0)));
        let probes: Vec<[f64; 1]> = (0..16).map(|i| [i as f64 / 16.0]).collect();
        let oracle = |model: &ServedModel, x: &[f64]| -> Prediction {
            let sources = model.source_trees();
            match model.kind() {
                TreeKind::Classifier { n_classes } => {
                    let mut votes = vec![0u32; n_classes];
                    for s in sources {
                        votes[s.predict_class(x)] += 1;
                    }
                    let best = (0..n_classes).max_by_key(|&c| (votes[c], std::cmp::Reverse(c)));
                    Prediction::Class(best.unwrap())
                }
                TreeKind::Regressor => {
                    let sum: f64 = sources.iter().map(|s| s.predict_value(x)).sum();
                    Prediction::Value(sum / sources.len() as f64)
                }
            }
        };
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let stop = &stop;
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let reg = &reg;
                    let probes = &probes;
                    scope.spawn(move || {
                        let mut seen_widths = std::collections::BTreeSet::new();
                        // Check-then-test, so at least one epoch is always
                        // observed even if the publishers finish first.
                        loop {
                            let m = reg.current();
                            seen_widths.insert(m.model.n_trees());
                            for x in probes {
                                assert_eq!(
                                    m.model.predict(x),
                                    oracle(&m.model, x),
                                    "epoch {} served an answer its sources disown",
                                    m.epoch
                                );
                            }
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        seen_widths
                    })
                })
                .collect();
            for k in 0..12u64 {
                if k % 2 == 0 {
                    reg.publish(tree(k as f64 * 0.01));
                } else {
                    let width = 2 + (k as usize % 3);
                    let sources: Vec<_> =
                        (0..width).map(|j| tree(j as f64 * 0.02 + 0.005)).collect();
                    reg.publish_model(ServedModel::from_trees(sources).unwrap());
                }
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                // Readers are free-running; they must at least have seen
                // *some* epoch, and nothing they saw was torn.
                assert!(!r.join().unwrap().is_empty());
            }
        });
        assert_eq!(reg.epoch(), 12);
    }
}
