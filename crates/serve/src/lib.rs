//! # metis-serve — online tree-serving engine
//!
//! The paper's deployability claim (§6.4, Figures 16a/17b) is that the
//! converted decision trees are small and fast enough to serve decisions
//! in production where the teacher DNN cannot. This crate turns that
//! closed-loop measurement into an actual serving subsystem, the shape a
//! tree takes when it sits in front of live traffic:
//!
//! * [`clock`] — the time substrate: one [`Clock`] with a real
//!   (wall-time) and a virtual (discrete-event) implementation; every
//!   stamp, deadline, and pacing sleep in this crate reads it, so the
//!   whole serving path runs unchanged under either time source,
//! * [`latency`] — per-request latency capture with percentile summaries
//!   (p50/p95/p99/max), the SLO-accounting vocabulary shared with
//!   `metis_core::deploy`,
//! * [`registry`] — an epoch-pointer model registry with atomic hot-swap:
//!   readers grab an `Arc` to the current [`ServedModel`] — one compiled
//!   tree or a [`metis_dt::Forest`] majority-vote ensemble — and never
//!   block; the §3.2 conversion pipeline publishes each newly fitted
//!   model mid-traffic, and in-flight batches finish on the epoch they
//!   started with,
//! * [`engine`] — the request engine: an MPSC ingest queue feeding a
//!   micro-batcher (flush on batch size *or* deadline) whose batches run
//!   the epoch's served model through the lane-vectorized kernel
//!   ([`ServedModel::predict_batch_into`], into a flush-reused scratch
//!   buffer) and fan across [`metis_nn::par::WorkerPool::global`] stripe
//!   jobs under a dedicated pool group,
//! * [`traffic`] — open-loop load generation: ABR-trace replay
//!   inter-arrivals and Poisson (flowsched-style) arrival processes driven
//!   against a server without ever waiting for responses.
//!
//! The engine and registry optionally report into the live telemetry
//! plane (`metis_telemetry`): hand [`ServeConfig::telemetry`] a
//! registered scope and every flush decomposes into stage-attributed
//! spans (queue-wait / batch-form / kernel / collect), feeds streaming
//! percentile sketches and flight-recorder events;
//! [`ModelRegistry::attach_telemetry`] does the same for publish/swap
//! cost. All stamps come from the engine's [`Clock`], so under virtual
//! time the telemetry is as deterministic as the responses.
//!
//! Determinism contract: every response is bit-identical to evaluating
//! the reported epoch's model sequentially — `DecisionTree::predict` for
//! tree epochs, the forest's majority vote for ensemble epochs — for any
//! batch size, flush deadline, thread count, and any interleaving of hot
//! swaps (`tests/serving_determinism.rs`). On a virtual clock the
//! contract extends to **time itself**: batch composition and every
//! latency figure are pure functions of the submission schedule
//! (`tests/sim_determinism.rs` at the workspace root).

pub mod clock;
pub mod engine;
pub mod latency;
pub mod registry;
pub mod traffic;

pub use clock::Clock;
pub use engine::{EngineReport, Request, Response, ServeConfig, ServerHandle, TreeServer};
pub use latency::{summarize, summarize_sorted, LatencyRecorder, LatencySummary};
pub use registry::{EpochModel, ModelRegistry, ServedModel};
pub use traffic::{
    drive_open_loop, drive_open_loop_paced, drive_open_loop_virtual, ArrivalProcess,
};
