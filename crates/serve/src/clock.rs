//! The time substrate: one [`Clock`] type with a **real** (wall-clock)
//! and a **virtual** (discrete-event) implementation, shared by the
//! engine, the traffic drivers, the fabric's shards, and the `metis_sim`
//! co-simulation harness.
//!
//! * [`Clock::real`] anchors an `Instant` and reports elapsed wall time —
//!   every pre-existing serving path is this instantiation, bit-identical
//!   to the old direct `Instant` arithmetic.
//! * [`Clock::virtual_at`] holds virtual seconds in an atomic and only
//!   moves when a driver calls [`Clock::advance_to`] — time costs nothing,
//!   so a simulated day of traffic takes compute time, and every timestamp
//!   is a pure function of the event schedule rather than of the host.
//!
//! The virtual clock is a **monotone high-water mark**: `advance_to` is a
//! `fetch_max`, so concurrent advancement from racing shards can never
//! move time backwards, and reading threads (batchers stamping flushes)
//! always see a time at least as late as every event already dispatched.
//! Monotonicity relies on virtual times being non-negative finite `f64`s,
//! whose IEEE-754 bit patterns order the same way the values do —
//! [`Clock::advance_to`] rejects anything else.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default busy-spin trim for [`Clock::sleep_until`]: sleep to within
/// this margin of the target, then spin the rest so sub-millisecond
/// schedules keep their shape despite coarse OS timer granularity.
pub const DEFAULT_SPIN_TRIM: Duration = Duration::from_micros(100);

/// Hard cap on the busy-spin trim: however a caller configures pacing,
/// a drive never burns more than this per gap in a spin loop.
pub const MAX_SPIN_TRIM: Duration = Duration::from_millis(2);

enum Inner {
    /// Wall time, measured from the anchoring `Instant`.
    Real(Instant),
    /// Virtual seconds, stored as `f64` bits (valid to `fetch_max`
    /// because non-negative finite doubles order bitwise).
    Virtual(AtomicU64),
}

/// A time source: real (wall-clock) or virtual (event-driven).
pub struct Clock {
    inner: Inner,
}

impl Clock {
    /// A wall clock anchored at "now". [`Clock::now_s`] reports seconds
    /// elapsed since this call.
    pub fn real() -> Arc<Clock> {
        Arc::new(Clock {
            inner: Inner::Real(Instant::now()),
        })
    }

    /// A virtual clock starting at `start_s` seconds. Time only moves via
    /// [`Clock::advance_to`] (or [`Clock::sleep_until`], which delegates
    /// to it) — never by itself.
    pub fn virtual_at(start_s: f64) -> Arc<Clock> {
        assert!(
            start_s.is_finite() && start_s >= 0.0,
            "virtual clock start must be finite and non-negative, got {start_s}"
        );
        Arc::new(Clock {
            inner: Inner::Virtual(AtomicU64::new(start_s.to_bits())),
        })
    }

    /// True for virtual clocks — the switch that turns off wall-clock
    /// deadlines (engine batching) and real sleeps (traffic pacing).
    pub fn is_virtual(&self) -> bool {
        matches!(self.inner, Inner::Virtual(_))
    }

    /// Current time in seconds: wall seconds since the anchor, or the
    /// virtual high-water mark.
    pub fn now_s(&self) -> f64 {
        match &self.inner {
            Inner::Real(anchor) => anchor.elapsed().as_secs_f64(),
            Inner::Virtual(bits) => f64::from_bits(bits.load(Ordering::Acquire)),
        }
    }

    /// Advance a virtual clock to at least `t_s` (monotone: a target in
    /// the past is a no-op). Panics on a real clock — wall time cannot be
    /// pushed.
    pub fn advance_to(&self, t_s: f64) {
        assert!(
            t_s.is_finite() && t_s >= 0.0,
            "advance_to needs a finite non-negative time, got {t_s}"
        );
        match &self.inner {
            Inner::Real(_) => panic!("advance_to on a real clock: wall time cannot be pushed"),
            Inner::Virtual(bits) => {
                // fetch_max on the bit pattern == fetch_max on the value
                // for non-negative finite doubles.
                bits.fetch_max(t_s.to_bits(), Ordering::AcqRel);
            }
        }
    }

    /// Wait until the clock reads at least `target_s`.
    ///
    /// * Real clock: sleep until `spin_trim` before the target, then
    ///   busy-spin the remainder — the bounded version of the old
    ///   `traffic::wait_until` (which spun an unconditional final 200µs).
    ///   `spin_trim` is clamped to [`MAX_SPIN_TRIM`]; pass
    ///   [`Duration::ZERO`] to never spin (pure `thread::sleep` pacing).
    /// * Virtual clock: no waiting at all — just [`Clock::advance_to`]
    ///   the target, which is what makes every clocked drive run the
    ///   whole schedule in compute time.
    pub fn sleep_until(&self, target_s: f64, spin_trim: Duration) {
        match &self.inner {
            Inner::Virtual(_) => self.advance_to(target_s.max(self.now_s())),
            Inner::Real(anchor) => {
                let trim = spin_trim.min(MAX_SPIN_TRIM);
                let target = *anchor + Duration::from_secs_f64(target_s.max(0.0));
                loop {
                    let now = Instant::now();
                    if now >= target {
                        return;
                    }
                    let left = target - now;
                    if left > trim {
                        std::thread::sleep(left - trim);
                    } else if trim.is_zero() {
                        // Spinning disabled: one coarse sleep and done.
                        std::thread::sleep(left);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Real(_) => write!(f, "Clock::Real({:.6}s)", self.now_s()),
            Inner::Virtual(_) => write!(f, "Clock::Virtual({:.6}s)", self.now_s()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_tracks_wall_time() {
        let clock = Clock::real();
        assert!(!clock.is_virtual());
        let a = clock.now_s();
        std::thread::sleep(Duration::from_millis(2));
        let b = clock.now_s();
        assert!(b > a, "wall clock must move on its own: {a} -> {b}");
    }

    #[test]
    fn virtual_clock_only_moves_on_advance_and_is_monotone() {
        let clock = Clock::virtual_at(1.5);
        assert!(clock.is_virtual());
        assert_eq!(clock.now_s(), 1.5);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(clock.now_s(), 1.5, "virtual time must not move by itself");
        clock.advance_to(3.25);
        assert_eq!(clock.now_s(), 3.25);
        clock.advance_to(2.0); // past target: no-op, never backwards
        assert_eq!(clock.now_s(), 3.25);
    }

    #[test]
    fn virtual_advance_races_keep_the_high_water_mark() {
        let clock = Clock::virtual_at(0.0);
        std::thread::scope(|scope| {
            for t in 1..=8u32 {
                let clock = &clock;
                scope.spawn(move || {
                    for step in 0..100u32 {
                        clock.advance_to(f64::from(t) + f64::from(step) * 1e-3);
                    }
                });
            }
        });
        assert_eq!(clock.now_s(), 8.099, "max of every advance target");
    }

    #[test]
    fn sleep_until_on_virtual_clock_never_sleeps() {
        let clock = Clock::virtual_at(0.0);
        let start = Instant::now();
        clock.sleep_until(3600.0, DEFAULT_SPIN_TRIM);
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.now_s(), 3600.0);
        // Target behind the high-water mark: keeps the mark.
        clock.sleep_until(100.0, DEFAULT_SPIN_TRIM);
        assert_eq!(clock.now_s(), 3600.0);
    }

    #[test]
    fn sleep_until_on_real_clock_reaches_the_target() {
        let clock = Clock::real();
        for trim in [Duration::ZERO, DEFAULT_SPIN_TRIM, Duration::from_secs(9)] {
            let target = clock.now_s() + 2e-3;
            clock.sleep_until(target, trim);
            assert!(
                clock.now_s() >= target,
                "sleep_until returned early (trim {trim:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "real clock")]
    fn advancing_a_real_clock_panics() {
        Clock::real().advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn virtual_clock_rejects_negative_start() {
        let _ = Clock::virtual_at(-1.0);
    }
}
