//! Trajectory collection and return/advantage computation.

use crate::env::{Env, Step};
use crate::policy::Policy;
use rand::rngs::StdRng;

/// A completed (or truncated) episode.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// Observation at each decision point (length = number of actions).
    pub observations: Vec<Vec<f64>>,
    pub actions: Vec<usize>,
    pub rewards: Vec<f64>,
    /// Whether the episode reached a terminal state (vs. hit `max_steps`).
    pub terminated: bool,
}

impl Trajectory {
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Total undiscounted reward.
    pub fn total_reward(&self) -> f64 {
        self.rewards.iter().sum()
    }

    /// The recorded observations stacked into a `(steps, obs_dim)` matrix
    /// — the unit the batched inference engine labels in one pass (e.g.
    /// relabelling a student trajectory with the teacher).
    pub fn observations_matrix(&self) -> metis_nn::Matrix {
        assert!(!self.observations.is_empty(), "empty trajectory");
        metis_nn::Matrix::from_rows_vec(&self.observations)
    }

    /// Discounted returns `G_t = r_t + γ·G_{t+1}` for every step.
    pub fn discounted_returns(&self, gamma: f64) -> Vec<f64> {
        let mut returns = vec![0.0; self.rewards.len()];
        let mut acc = 0.0;
        for t in (0..self.rewards.len()).rev() {
            acc = self.rewards[t] + gamma * acc;
            returns[t] = acc;
        }
        returns
    }
}

/// How actions are selected during a rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionMode {
    /// Sample from the policy distribution (training).
    Sample,
    /// Always take the argmax (evaluation / trace collection).
    Greedy,
}

/// Roll a policy through one episode (capped at `max_steps`).
pub fn rollout<E: Env, P: Policy + ?Sized>(
    env: &mut E,
    policy: &P,
    mode: ActionMode,
    max_steps: usize,
    rng: &mut StdRng,
) -> Trajectory {
    let mut traj = Trajectory::default();
    let mut obs = env.reset();
    for _ in 0..max_steps {
        let action = match mode {
            ActionMode::Sample => policy.act_sample(&obs, rng),
            ActionMode::Greedy => policy.act_greedy(&obs),
        };
        let Step {
            obs: next,
            reward,
            done,
        } = env.step(action);
        traj.observations.push(obs);
        traj.actions.push(action);
        traj.rewards.push(reward);
        obs = next;
        if done {
            traj.terminated = true;
            break;
        }
    }
    traj
}

/// Mean total reward of a policy over `episodes` greedy rollouts, each on a
/// fresh clone of `env` (the env itself decides any internal variation).
pub fn evaluate<E: Env, P: Policy + ?Sized>(
    env: &E,
    policy: &P,
    episodes: usize,
    max_steps: usize,
    rng: &mut StdRng,
) -> f64 {
    if episodes == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut e = env.clone();
        total += rollout(&mut e, policy, ActionMode::Greedy, max_steps, rng).total_reward();
    }
    total / episodes as f64
}

/// Summary of one greedy evaluation episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeScore {
    /// Total undiscounted reward of the episode.
    pub total_reward: f64,
    /// Number of decision steps taken.
    pub steps: usize,
}

/// Greedy episode score of a policy on every environment of a pool, with
/// the episodes fanned across `threads` workers (0 = all cores) and the
/// results merged in environment order — identical output for any thread
/// count. Each episode's RNG derives from `seed` and the environment
/// index (greedy rollouts only consume it if a policy samples internally).
pub fn evaluate_pool<E: Env + Sync, P: Policy + Sync + ?Sized>(
    pool: &[E],
    policy: &P,
    max_steps: usize,
    seed: u64,
    threads: usize,
) -> Vec<EpisodeScore> {
    use rand::SeedableRng;
    crate::par::parallel_map_indexed(pool.len(), threads, |i| {
        let mut env = pool[i].clone();
        let mut rng = StdRng::seed_from_u64(crate::par::mix_seed(
            seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
        ));
        let traj = rollout(&mut env, policy, ActionMode::Greedy, max_steps, &mut rng);
        EpisodeScore {
            total_reward: traj.total_reward(),
            steps: traj.len(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{BanditEnv, DelayedEnv};
    use crate::policy::{ConstantPolicy, UniformPolicy};
    use rand::SeedableRng;

    #[test]
    fn discounted_returns_known_values() {
        let traj = Trajectory {
            rewards: vec![1.0, 1.0, 1.0],
            ..Default::default()
        };
        let r = traj.discounted_returns(0.5);
        assert_eq!(r, vec![1.75, 1.5, 1.0]);
        let r1 = traj.discounted_returns(1.0);
        assert_eq!(r1, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn rollout_respects_max_steps() {
        let mut env = BanditEnv::new(2, 1_000_000, 3);
        let policy = UniformPolicy { n_actions: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let traj = rollout(&mut env, &policy, ActionMode::Sample, 10, &mut rng);
        assert_eq!(traj.len(), 10);
        assert!(!traj.terminated);
    }

    #[test]
    fn rollout_stops_at_terminal() {
        let mut env = DelayedEnv::new();
        let policy = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let traj = rollout(&mut env, &policy, ActionMode::Greedy, 100, &mut rng);
        assert_eq!(traj.len(), 2);
        assert!(traj.terminated);
        assert_eq!(traj.total_reward(), 1.0);
    }

    #[test]
    fn rollout_records_aligned_tuples() {
        let mut env = DelayedEnv::new();
        let policy = ConstantPolicy {
            action: 0,
            n_actions: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let traj = rollout(&mut env, &policy, ActionMode::Greedy, 100, &mut rng);
        assert_eq!(traj.observations.len(), traj.actions.len());
        assert_eq!(traj.actions.len(), traj.rewards.len());
        assert_eq!(traj.observations[0], vec![0.0, 0.0]);
        assert_eq!(traj.total_reward(), 0.0);
    }

    #[test]
    fn evaluate_scores_optimal_vs_bad_policy() {
        // For DelayedEnv, always-1 is optimal (return 1), always-0 gets 0.
        let env = DelayedEnv::new();
        let mut rng = StdRng::seed_from_u64(0);
        let good = evaluate(
            &env,
            &ConstantPolicy {
                action: 1,
                n_actions: 2,
            },
            5,
            100,
            &mut rng,
        );
        let bad = evaluate(
            &env,
            &ConstantPolicy {
                action: 0,
                n_actions: 2,
            },
            5,
            100,
            &mut rng,
        );
        assert_eq!(good, 1.0);
        assert_eq!(bad, 0.0);
    }
}
