//! Policy abstraction: anything that maps an observation to a distribution
//! over discrete actions. Both teacher DNNs and student decision trees
//! implement this trait, which is what lets the conversion pipeline treat
//! them interchangeably.

use metis_nn::{argmax, softmax, Matrix, Mlp, Network};
use rand::rngs::StdRng;
use rand::Rng;

/// A stochastic discrete policy.
///
/// The batched methods take a `(batch, obs_dim)` matrix and must return,
/// row for row, exactly what the per-obs methods return — network-backed
/// policies override them with one matrix-matrix forward pass, everything
/// else inherits the per-row fallback. This contract is what lets the
/// conversion engine label whole episodes at once while staying
/// bit-identical to per-obs labelling.
pub trait Policy {
    /// Action probability distribution for an observation.
    fn action_probs(&self, obs: &[f64]) -> Vec<f64>;

    /// Greedy action (argmax of the distribution).
    fn act_greedy(&self, obs: &[f64]) -> usize {
        argmax(&self.action_probs(obs))
    }

    /// Sample an action from the distribution.
    fn act_sample(&self, obs: &[f64], rng: &mut StdRng) -> usize {
        sample_categorical(&self.action_probs(obs), rng)
    }

    /// Batched [`Policy::action_probs`], one distribution per row.
    fn action_probs_batch(&self, obs: &Matrix) -> Vec<Vec<f64>> {
        (0..obs.rows())
            .map(|r| self.action_probs(obs.row(r)))
            .collect()
    }

    /// Batched [`Policy::act_greedy`], one action per row.
    fn act_greedy_batch(&self, obs: &Matrix) -> Vec<usize> {
        (0..obs.rows())
            .map(|r| self.act_greedy(obs.row(r)))
            .collect()
    }

    /// Distributions **and** greedy actions for a batch in one query —
    /// the unit of DAgger teacher labelling (the label is the greedy
    /// action, the distribution feeds the Eq.-1 weight). The default
    /// issues both batched queries; policies whose greedy action is the
    /// argmax of their distribution (softmax policies) override this to
    /// share a single forward pass, which must return exactly what the
    /// two separate queries would.
    fn probs_and_greedy_batch(&self, obs: &Matrix) -> (Vec<Vec<f64>>, Vec<usize>) {
        (self.action_probs_batch(obs), self.act_greedy_batch(obs))
    }
}

/// Sample an index from an (approximately normalized) distribution.
pub fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> usize {
    debug_assert!(!probs.is_empty());
    let total: f64 = probs.iter().sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// A softmax policy over network logits — the teacher-DNN form used by
/// Pensieve-style agents and AuTO's lRLA. Generic over [`Network`] so the
/// §6.2 architecture-modification experiment (skip connection) trains with
/// the same machinery as a plain [`Mlp`].
#[derive(Debug, Clone)]
pub struct SoftmaxPolicy<N: Network = Mlp> {
    pub net: N,
}

impl<N: Network> SoftmaxPolicy<N> {
    pub fn new(net: N) -> Self {
        SoftmaxPolicy { net }
    }

    /// Raw logits for an observation.
    pub fn logits(&self, obs: &[f64]) -> Vec<f64> {
        self.net.predict(obs)
    }

    /// Raw logits for a batch of observations, one matrix-matrix pass.
    pub fn logits_batch(&self, obs: &Matrix) -> Matrix {
        self.net.forward_batch(obs)
    }
}

impl<N: Network> Policy for SoftmaxPolicy<N> {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        softmax(&self.net.predict(obs))
    }

    /// One batched forward; row `i` equals `action_probs` of row `i`
    /// bit-exactly (kernel row invariance + the same scalar softmax).
    fn action_probs_batch(&self, obs: &Matrix) -> Vec<Vec<f64>> {
        let logits = self.net.forward_batch(obs);
        (0..logits.rows()).map(|r| softmax(logits.row(r))).collect()
    }

    fn act_greedy_batch(&self, obs: &Matrix) -> Vec<usize> {
        self.action_probs_batch(obs)
            .iter()
            .map(|p| argmax(p))
            .collect()
    }

    /// One forward pass serves both: `act_greedy` for a softmax policy is
    /// `argmax(action_probs(obs))` (the trait default — this type does not
    /// override it), so deriving the action from the freshly computed row
    /// distribution is bit-identical to querying it separately.
    fn probs_and_greedy_batch(&self, obs: &Matrix) -> (Vec<Vec<f64>>, Vec<usize>) {
        let probs = self.action_probs_batch(obs);
        let actions = probs.iter().map(|p| argmax(p)).collect();
        (probs, actions)
    }
}

/// A fixed-action policy (useful as a degenerate baseline and in tests).
#[derive(Debug, Clone)]
pub struct ConstantPolicy {
    pub action: usize,
    pub n_actions: usize,
}

impl Policy for ConstantPolicy {
    fn action_probs(&self, _obs: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.n_actions];
        p[self.action] = 1.0;
        p
    }
}

/// A uniformly random policy (exploration baseline).
#[derive(Debug, Clone)]
pub struct UniformPolicy {
    pub n_actions: usize,
}

impl Policy for UniformPolicy {
    fn action_probs(&self, _obs: &[f64]) -> Vec<f64> {
        vec![1.0 / self.n_actions as f64; self.n_actions]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_nn::Activation;
    use rand::SeedableRng;

    #[test]
    fn constant_policy_always_acts() {
        let p = ConstantPolicy {
            action: 2,
            n_actions: 4,
        };
        assert_eq!(p.act_greedy(&[0.0]), 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.act_sample(&[0.0], &mut rng), 2);
    }

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let probs = [0.1, 0.7, 0.2];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert!((counts[1] as f64 / 10_000.0 - 0.7).abs() < 0.03);
        assert!((counts[0] as f64 / 10_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn sample_categorical_handles_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_categorical(&[0.0, 1.0, 0.0], &mut rng), 1);
        assert_eq!(sample_categorical(&[1.0], &mut rng), 0);
    }

    #[test]
    fn softmax_policy_probs_normalized() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::new(&[3, 8, 4], Activation::Tanh, Activation::Linear, &mut rng);
        let p = SoftmaxPolicy::new(net);
        let probs = p.action_probs(&[0.1, 0.2, 0.3]);
        assert_eq!(probs.len(), 4);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&x| x > 0.0));
        assert!(p.act_greedy(&[0.1, 0.2, 0.3]) < 4);
    }

    #[test]
    fn uniform_policy_samples_everything() {
        let p = UniformPolicy { n_actions: 3 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[p.act_sample(&[], &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
