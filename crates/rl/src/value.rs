//! State-value estimates for the Eq.-1 Q lookahead, with a batched path.
//!
//! The conversion pipeline bootstraps `Q(s, a) = r + γ·V(s')` from a
//! caller-supplied value estimate. Historically that was a bare
//! `Fn(&[f64]) -> f64` closure queried one afterstate at a time; the
//! batched inference engine wants whole matrices of afterstates labelled
//! in one matrix-matrix pass. [`ValueEstimate`] covers both: every
//! `Fn(&[f64]) -> f64 + Sync` closure still works (per-row fallback), and
//! [`NetworkValue`] wraps a critic [`Network`] with a genuinely batched
//! `value_batch`.
//!
//! Bit-parity contract: `value_batch` row `i` must equal
//! `value(of row i)` exactly. The closure fallback satisfies it by
//! construction; [`NetworkValue`] inherits it from the matmul kernel's
//! row invariance (see [`Matrix::matmul`]).

use metis_nn::{Matrix, Network};

/// A bootstrap state-value estimate `V(s)` with a batched query path.
pub trait ValueEstimate: Sync {
    /// Value of a single observation.
    fn value(&self, obs: &[f64]) -> f64;

    /// Values of a `(batch, obs_dim)` matrix of observations, one per row.
    /// Default: per-row fallback through [`ValueEstimate::value`].
    fn value_batch(&self, obs: &Matrix) -> Vec<f64> {
        (0..obs.rows()).map(|r| self.value(obs.row(r))).collect()
    }

    /// Whether batched queries amortize real work. Network-backed
    /// estimates return `true` (one matrix-matrix pass beats N
    /// matrix-vector passes); the closure default is `false`, telling the
    /// collector to skip the afterstate-deferral bookkeeping and query
    /// inline — the values are identical either way.
    fn prefers_batch(&self) -> bool {
        false
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> ValueEstimate for F {
    fn value(&self, obs: &[f64]) -> f64 {
        self(obs)
    }
}

/// A critic network as a value estimate: output 0 of the network is
/// `V(s)`, and `value_batch` is one batched forward pass.
#[derive(Debug, Clone)]
pub struct NetworkValue<N: Network> {
    pub net: N,
}

impl<N: Network> NetworkValue<N> {
    pub fn new(net: N) -> Self {
        NetworkValue { net }
    }
}

impl<N: Network + Sync> ValueEstimate for NetworkValue<N> {
    fn value(&self, obs: &[f64]) -> f64 {
        self.net.predict(obs)[0]
    }

    fn value_batch(&self, obs: &Matrix) -> Vec<f64> {
        let out = self.net.forward_batch(obs);
        (0..out.rows()).map(|r| out[(r, 0)]).collect()
    }

    fn prefers_batch(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_nn::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn closure_fallback_is_per_row() {
        let v = |obs: &[f64]| obs.iter().sum::<f64>();
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(ValueEstimate::value(&v, &[1.0, 2.0]), 3.0);
        assert_eq!(v.value_batch(&m), vec![3.0, 7.0]);
    }

    #[test]
    fn network_value_batch_matches_per_obs_exactly() {
        let mut rng = StdRng::seed_from_u64(21);
        let critic = Mlp::new(&[5, 8, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let nv = NetworkValue::new(critic);
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f64).sin()).collect())
            .collect();
        let batched = nv.value_batch(&Matrix::from_rows_vec(&rows));
        for (row, &b) in rows.iter().zip(batched.iter()) {
            assert_eq!(nv.value(row), b, "value_batch row diverges from value");
        }
    }
}
