//! Advantage actor-critic (A2C-style) policy-gradient training.
//!
//! This is the single-process stand-in for the A3C/policy-gradient setups
//! the teacher systems were trained with (Pensieve, AuTO's lRLA/sRLA);
//! parallel workers only change wall-clock time, not the policy class, so
//! the substitution is recorded in DESIGN.md §1.3.

use crate::env::Env;
use crate::policy::SoftmaxPolicy;
use crate::rollout::{rollout, ActionMode, Trajectory};
use metis_nn::{clip_grad_norm, softmax, Activation, Adam, Matrix, Mlp, Network, Optimizer};
use rand::rngs::StdRng;
use rand::Rng;

/// Hyperparameters for actor-critic training.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub gamma: f64,
    pub actor_lr: f64,
    pub critic_lr: f64,
    /// Entropy bonus coefficient (exploration pressure).
    pub entropy_coef: f64,
    /// Episodes collected per `train_epoch` call.
    pub episodes_per_epoch: usize,
    /// Hard cap on episode length.
    pub max_steps: usize,
    /// Joint L2 gradient clip.
    pub grad_clip: f64,
    /// Standardize advantages within each epoch (variance reduction).
    pub normalize_advantages: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            gamma: 0.99,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            entropy_coef: 0.01,
            episodes_per_epoch: 8,
            max_steps: 1000,
            grad_clip: 5.0,
            normalize_advantages: true,
        }
    }
}

/// Statistics from one training epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    pub mean_return: f64,
    pub mean_entropy: f64,
    pub mean_episode_len: f64,
}

/// An actor (softmax policy) and critic (value MLP) trained jointly.
/// Generic over the actor's [`Network`] so custom architectures (the
/// Figure-10 skip connection) train identically to plain MLPs.
#[derive(Debug, Clone)]
pub struct ActorCritic<N: Network = Mlp> {
    pub policy: SoftmaxPolicy<N>,
    pub critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    pub config: TrainConfig,
}

impl ActorCritic<Mlp> {
    /// Build actor `[obs, hidden.., n_actions]` and critic
    /// `[obs, hidden.., 1]` networks with tanh hidden activations.
    pub fn new(
        obs_dim: usize,
        n_actions: usize,
        hidden: &[usize],
        config: TrainConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut actor_dims = vec![obs_dim];
        actor_dims.extend_from_slice(hidden);
        actor_dims.push(n_actions);
        let mut critic_dims = vec![obs_dim];
        critic_dims.extend_from_slice(hidden);
        critic_dims.push(1);
        let actor = Mlp::new(&actor_dims, Activation::Tanh, Activation::Linear, rng);
        let critic = Mlp::new(&critic_dims, Activation::Tanh, Activation::Linear, rng);
        let actor_opt = Adam::new(config.actor_lr);
        let critic_opt = Adam::new(config.critic_lr);
        ActorCritic {
            policy: SoftmaxPolicy::new(actor),
            critic,
            actor_opt,
            critic_opt,
            config,
        }
    }
}

impl<N: Network> ActorCritic<N> {
    /// Wrap externally built networks (used by the Pensieve architecture
    /// experiments where the actor has a custom structure).
    pub fn from_networks(actor: N, critic: Mlp, config: TrainConfig) -> Self {
        let actor_opt = Adam::new(config.actor_lr);
        let critic_opt = Adam::new(config.critic_lr);
        ActorCritic {
            policy: SoftmaxPolicy::new(actor),
            critic,
            actor_opt,
            critic_opt,
            config,
        }
    }

    /// Critic value estimate for one observation.
    pub fn value(&self, obs: &[f64]) -> f64 {
        self.critic.predict(obs)[0]
    }

    /// A snapshot of the critic as a batched [`crate::ValueEstimate`] —
    /// the value bootstrap handed to the conversion pipeline so Eq.-1
    /// lookaheads are labelled in matrix-matrix passes.
    pub fn value_estimate(&self) -> crate::value::NetworkValue<Mlp> {
        crate::value::NetworkValue::new(self.critic.clone())
    }

    /// Collect episodes (sampling actions) and apply one gradient update to
    /// actor and critic. `env_pool` supplies episode variation: one element
    /// is chosen (uniformly) and cloned per episode.
    pub fn train_epoch<E: Env>(&mut self, env_pool: &[E], rng: &mut StdRng) -> EpochStats {
        assert!(!env_pool.is_empty(), "train_epoch: empty environment pool");
        let mut trajectories = Vec::with_capacity(self.config.episodes_per_epoch);
        for _ in 0..self.config.episodes_per_epoch {
            let mut env = env_pool[rng.gen_range(0..env_pool.len())].clone();
            trajectories.push(rollout(
                &mut env,
                &self.policy,
                ActionMode::Sample,
                self.config.max_steps,
                rng,
            ));
        }
        self.update(&trajectories)
    }

    /// Apply one actor-critic update from already-collected trajectories.
    pub fn update(&mut self, trajectories: &[Trajectory]) -> EpochStats {
        let gamma = self.config.gamma;
        let mut observations: Vec<&[f64]> = Vec::new();
        let mut actions: Vec<usize> = Vec::new();
        let mut returns: Vec<f64> = Vec::new();
        for traj in trajectories {
            let g = traj.discounted_returns(gamma);
            for ((obs, &action), ret) in traj.observations.iter().zip(&traj.actions).zip(g) {
                observations.push(obs);
                actions.push(action);
                returns.push(ret);
            }
        }
        let n = observations.len();
        if n == 0 {
            return EpochStats {
                mean_return: 0.0,
                mean_entropy: 0.0,
                mean_episode_len: 0.0,
            };
        }

        let obs_dim = observations[0].len();
        let mut x = Matrix::zeros(n, obs_dim);
        for (i, o) in observations.iter().enumerate() {
            x.row_mut(i).copy_from_slice(o);
        }

        // ---- critic update: fit V(s) to the Monte-Carlo return ----
        let values = self.critic.forward(&x);
        let mut critic_grad = Matrix::zeros(n, 1);
        for i in 0..n {
            critic_grad[(i, 0)] = 2.0 * (values[(i, 0)] - returns[i]) / n as f64;
        }
        self.critic.zero_grad();
        self.critic.backward(&critic_grad);
        {
            let mut params = self.critic.params();
            clip_grad_norm(&mut params, self.config.grad_clip);
            self.critic_opt.step(&mut params);
        }

        // ---- advantages (from pre-update critic values) ----
        let mut advantages: Vec<f64> = (0..n).map(|i| returns[i] - values[(i, 0)]).collect();
        if self.config.normalize_advantages && n > 1 {
            let mean = advantages.iter().sum::<f64>() / n as f64;
            let var = advantages
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f64>()
                / n as f64;
            let std = var.sqrt().max(1e-8);
            for a in &mut advantages {
                *a = (*a - mean) / std;
            }
        }

        // ---- actor update: policy gradient + entropy bonus ----
        let logits = self.policy.net.forward(&x);
        let n_actions = logits.cols();
        let mut actor_grad = Matrix::zeros(n, n_actions);
        let mut total_entropy = 0.0;
        for i in 0..n {
            let probs = softmax(logits.row(i));
            let entropy: f64 = -probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| p * p.ln())
                .sum::<f64>();
            total_entropy += entropy;
            for k in 0..n_actions {
                let onehot = if k == actions[i] { 1.0 } else { 0.0 };
                // d(-adv·lnπ)/dz_k = adv·(p_k − 1{k=a})
                let pg = advantages[i] * (probs[k] - onehot);
                // d(-β·H)/dz_k = β·p_k·(ln p_k + H)
                let ent =
                    self.config.entropy_coef * probs[k] * (probs[k].max(1e-12).ln() + entropy);
                actor_grad[(i, k)] = (pg + ent) / n as f64;
            }
        }
        self.policy.net.zero_grad();
        self.policy.net.backward(&actor_grad);
        {
            let mut params = self.policy.net.params();
            clip_grad_norm(&mut params, self.config.grad_clip);
            self.actor_opt.step(&mut params);
        }

        let total_return: f64 = trajectories.iter().map(|t| t.total_reward()).sum();
        EpochStats {
            mean_return: total_return / trajectories.len() as f64,
            mean_entropy: total_entropy / n as f64,
            mean_episode_len: n as f64 / trajectories.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{BanditEnv, DelayedEnv};
    use crate::policy::Policy;
    use crate::rollout::evaluate;
    use rand::SeedableRng;

    #[test]
    fn learns_contextual_bandit() {
        let mut rng = StdRng::seed_from_u64(11);
        let config = TrainConfig {
            gamma: 0.9,
            actor_lr: 5e-3,
            critic_lr: 1e-2,
            episodes_per_epoch: 8,
            max_steps: 20,
            ..Default::default()
        };
        let mut ac = ActorCritic::new(3, 3, &[16], config, &mut rng);
        let pool: Vec<BanditEnv> = (0..8).map(|s| BanditEnv::new(3, 20, s)).collect();
        for _ in 0..150 {
            ac.train_epoch(&pool, &mut rng);
        }
        let score = evaluate(&pool[0], &ac.policy, 4, 20, &mut rng);
        assert!(score > 17.0, "bandit not learned: mean return {score}/20");
    }

    #[test]
    fn learns_delayed_credit() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = TrainConfig {
            gamma: 0.99,
            actor_lr: 1e-2,
            critic_lr: 2e-2,
            episodes_per_epoch: 16,
            max_steps: 10,
            ..Default::default()
        };
        let mut ac = ActorCritic::new(2, 2, &[8], config, &mut rng);
        let pool = [DelayedEnv::new()];
        for _ in 0..120 {
            ac.train_epoch(&pool, &mut rng);
        }
        // The first action decides everything: the policy must pick 1.
        assert_eq!(ac.policy.act_greedy(&[0.0, 0.0]), 1);
        let score = evaluate(&pool[0], &ac.policy, 3, 10, &mut rng);
        assert_eq!(score, 1.0);
    }

    #[test]
    fn critic_learns_values() {
        let mut rng = StdRng::seed_from_u64(19);
        let config = TrainConfig {
            episodes_per_epoch: 16,
            max_steps: 10,
            ..Default::default()
        };
        let mut ac = ActorCritic::new(2, 2, &[8], config, &mut rng);
        let pool = [DelayedEnv::new()];
        for _ in 0..200 {
            ac.train_epoch(&pool, &mut rng);
        }
        // Once the policy picks action 1, V(initial state) -> gamma * 1.
        let v0 = ac.value(&[0.0, 0.0]);
        assert!(
            v0 > 0.5,
            "critic value at start should approach ~0.99, got {v0}"
        );
    }

    #[test]
    fn update_with_empty_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ac = ActorCritic::new(2, 2, &[4], TrainConfig::default(), &mut rng);
        let stats = ac.update(&[]);
        assert_eq!(stats.mean_return, 0.0);
    }

    #[test]
    fn entropy_decreases_as_policy_sharpens() {
        let mut rng = StdRng::seed_from_u64(23);
        let config = TrainConfig {
            entropy_coef: 0.0,
            episodes_per_epoch: 8,
            max_steps: 20,
            ..Default::default()
        };
        let mut ac = ActorCritic::new(3, 3, &[16], config, &mut rng);
        let pool: Vec<BanditEnv> = (0..4).map(|s| BanditEnv::new(3, 20, s)).collect();
        let first = ac.train_epoch(&pool, &mut rng);
        let mut last = first;
        for _ in 0..150 {
            last = ac.train_epoch(&pool, &mut rng);
        }
        assert!(
            last.mean_entropy < first.mean_entropy,
            "entropy should drop: {} -> {}",
            first.mean_entropy,
            last.mean_entropy
        );
    }
}
