//! # metis-rl — reinforcement-learning machinery for the Metis reproduction
//!
//! The paper's local systems (Pensieve, AuTO) are deep-RL agents; Metis'
//! conversion pipeline additionally needs their value/Q estimates for the
//! Eq.-1 resampling. This crate provides:
//!
//! * [`env::Env`] — the cloneable discrete-action environment trait shared
//!   by the ABR and flow-scheduling simulators (`Clone` enables *exact*
//!   counterfactual Q via [`env::q_by_cloning`]),
//! * [`policy::Policy`] — distribution-over-actions abstraction implemented
//!   by both teacher DNNs and student decision trees,
//! * [`rollout`] — trajectory collection and discounted returns,
//! * [`train::ActorCritic`] — A2C-style policy-gradient training (the
//!   single-process stand-in for the teachers' A3C setups),
//! * [`viper`] — teacher–student collection with DAgger-style teacher
//!   takeover and the Eq.-1 advantage resampler.

pub mod env;
pub mod par;
pub mod policy;
pub mod rollout;
pub mod train;
pub mod value;
pub mod viper;

pub use env::{q_by_cloning, Env, Step};
pub use par::{mix_seed, parallel_map_indexed, resolve_threads};
pub use policy::{sample_categorical, ConstantPolicy, Policy, SoftmaxPolicy, UniformPolicy};
pub use rollout::{evaluate, evaluate_pool, rollout, ActionMode, EpisodeScore, Trajectory};
pub use train::{ActorCritic, EpochStats, TrainConfig};
pub use value::{NetworkValue, ValueEstimate};
pub use viper::{
    collect, collect_seeded, fidelity, fidelity_sharded, resample_by_weight, states_matrix,
    CollectConfig, Controller, SampledState,
};
