//! The environment abstraction shared by every sequential-decision system
//! in the reproduction (ABR video streaming, flow scheduling).
//!
//! Environments are required to be `Clone` so the conversion pipeline can
//! evaluate *counterfactual* actions: Metis' Eq. 1 needs `Q(s, a)` for every
//! action, and because our substrates are deterministic simulators, cloning
//! the environment and stepping each action yields exact one-step lookahead
//! (`Q(s,a) = r + γ·V(s')`) instead of a learned approximation.

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Observation after the transition.
    pub obs: Vec<f64>,
    /// Scalar reward for the transition.
    pub reward: f64,
    /// Whether the episode has ended (the `obs` is then terminal).
    pub done: bool,
}

/// A discrete-action sequential decision environment.
pub trait Env: Clone {
    /// Reset to the initial state and return the first observation.
    fn reset(&mut self) -> Vec<f64>;

    /// Apply an action.
    ///
    /// # Panics
    /// Implementations may panic if `action >= n_actions()` or if called
    /// after `done` without an intervening `reset`.
    fn step(&mut self, action: usize) -> Step;

    /// Size of the discrete action space.
    fn n_actions(&self) -> usize;

    /// Length of observation vectors.
    fn obs_dim(&self) -> usize;
}

/// Exact one-step-lookahead Q values by cloning a deterministic env:
/// `Q(s,a) = r(s,a) + γ·V(s')`, with `V` supplied by the caller
/// (typically a trained critic; zero for terminal states).
pub fn q_by_cloning<E: Env>(env: &E, value_fn: impl Fn(&[f64]) -> f64, gamma: f64) -> Vec<f64> {
    (0..env.n_actions())
        .map(|a| {
            let mut sim = env.clone();
            let step = sim.step(a);
            if step.done {
                step.reward
            } else {
                step.reward + gamma * value_fn(&step.obs)
            }
        })
        .collect()
}

/// Tiny reference environments used across the workspace's tests and
/// examples (a contextual bandit and a delayed-credit latch).
pub mod test_envs {
    use super::*;

    /// Contextual bandit: observation is a one-hot context; acting with the
    /// context index yields reward 1, otherwise 0. Episode length fixed.
    #[derive(Debug, Clone)]
    pub struct BanditEnv {
        pub contexts: usize,
        pub horizon: usize,
        pub t: usize,
        pub state: usize,
        seed: u64,
    }

    impl BanditEnv {
        pub fn new(contexts: usize, horizon: usize, seed: u64) -> Self {
            BanditEnv {
                contexts,
                horizon,
                t: 0,
                state: 0,
                seed,
            }
        }

        fn next_state(&self) -> usize {
            // Deterministic pseudo-random context sequence.
            let mut h = self
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(self.t as u64);
            h ^= h >> 31;
            h = h.wrapping_mul(0xBF58476D1CE4E5B9);
            (h >> 16) as usize % self.contexts
        }

        fn obs_vec(&self) -> Vec<f64> {
            let mut v = vec![0.0; self.contexts];
            v[self.state] = 1.0;
            v
        }
    }

    impl Env for BanditEnv {
        fn reset(&mut self) -> Vec<f64> {
            self.t = 0;
            self.state = self.next_state();
            self.obs_vec()
        }

        fn step(&mut self, action: usize) -> Step {
            assert!(action < self.contexts);
            let reward = if action == self.state { 1.0 } else { 0.0 };
            self.t += 1;
            self.state = self.next_state();
            Step {
                obs: self.obs_vec(),
                reward,
                done: self.t >= self.horizon,
            }
        }

        fn n_actions(&self) -> usize {
            self.contexts
        }

        fn obs_dim(&self) -> usize {
            self.contexts
        }
    }

    /// Two-step delayed-credit env: action at t=0 sets a latch; reward
    /// arrives only at t=1 and equals 1 if the latch was action 1.
    #[derive(Debug, Clone)]
    pub struct DelayedEnv {
        pub t: usize,
        pub latch: usize,
    }

    impl Default for DelayedEnv {
        fn default() -> Self {
            Self::new()
        }
    }

    impl DelayedEnv {
        pub fn new() -> Self {
            DelayedEnv { t: 0, latch: 0 }
        }
    }

    impl Env for DelayedEnv {
        fn reset(&mut self) -> Vec<f64> {
            self.t = 0;
            self.latch = 0;
            vec![0.0, 0.0]
        }

        fn step(&mut self, action: usize) -> Step {
            match self.t {
                0 => {
                    self.latch = action;
                    self.t = 1;
                    Step {
                        obs: vec![1.0, self.latch as f64],
                        reward: 0.0,
                        done: false,
                    }
                }
                _ => {
                    let reward = if self.latch == 1 { 1.0 } else { 0.0 };
                    self.t = 2;
                    Step {
                        obs: vec![2.0, self.latch as f64],
                        reward,
                        done: true,
                    }
                }
            }
        }

        fn n_actions(&self) -> usize {
            2
        }

        fn obs_dim(&self) -> usize {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_envs::*;
    use super::*;

    #[test]
    fn bandit_reward_structure() {
        let mut env = BanditEnv::new(3, 10, 42);
        let obs = env.reset();
        let ctx = obs.iter().position(|&x| x == 1.0).unwrap();
        let step = env.step(ctx);
        assert_eq!(step.reward, 1.0);
        let obs2 = step.obs;
        let ctx2 = obs2.iter().position(|&x| x == 1.0).unwrap();
        let wrong = (ctx2 + 1) % 3;
        assert_eq!(env.step(wrong).reward, 0.0);
    }

    #[test]
    fn bandit_terminates_at_horizon() {
        let mut env = BanditEnv::new(2, 3, 1);
        env.reset();
        assert!(!env.step(0).done);
        assert!(!env.step(0).done);
        assert!(env.step(0).done);
    }

    #[test]
    fn q_by_cloning_exact_for_bandit() {
        let mut env = BanditEnv::new(3, 5, 7);
        let obs = env.reset();
        let ctx = obs.iter().position(|&x| x == 1.0).unwrap();
        // Zero value function: Q == immediate reward.
        let q = q_by_cloning(&env, |_| 0.0, 0.99);
        for (a, &qa) in q.iter().enumerate() {
            assert_eq!(qa, if a == ctx { 1.0 } else { 0.0 });
        }
        // Cloning must not perturb the original env.
        let step = env.step(ctx);
        assert_eq!(step.reward, 1.0);
    }

    #[test]
    fn q_by_cloning_bootstraps_nonterminal() {
        let mut env = DelayedEnv::new();
        env.reset();
        // At t=0 no immediate reward; with V(s')=10 both actions bootstrap.
        let q = q_by_cloning(&env, |_| 10.0, 0.5);
        assert_eq!(q, vec![5.0, 5.0]);
        // At t=1 the step is terminal: no bootstrap.
        env.step(1);
        let q2 = q_by_cloning(&env, |_| 10.0, 0.5);
        assert_eq!(q2, vec![1.0, 1.0]); // latch already set to 1
    }
}
