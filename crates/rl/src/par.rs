//! Deterministic fork/join primitives — re-exported from [`metis_nn::par`],
//! where they now live so every layer of the stack (including the
//! hypergraph mask search, which does not depend on this crate) shares the
//! same index-ordered merge contract — and, since the persistent worker
//! pool, the same thread budget. Existing `metis_rl::par` paths keep
//! working.

pub use metis_nn::par::{
    fresh_group, global, mix_seed, parallel_map_indexed, resolve_threads, with_group, WorkerPool,
};
