//! Teacher–student dataset collection: the RL side of Metis' conversion
//! methodology (§3.2 / Appendix A).
//!
//! * **Step 1 (trace collection)** — follow the teacher DNN's trajectories;
//!   in later rounds the student controls, the teacher labels, and —
//!   matching the paper — the teacher *takes over* when the student
//!   deviates, so the state distribution stays near the teacher's.
//! * **Step 2 (resampling, Eq. 1)** — each (state, action) pair gets weight
//!   `ℓ̃(s) = V(s) − min_a Q(s, a)` (the loss bound of Bastani et al. [7]);
//!   because our substrates are deterministic cloneable simulators, `Q` is
//!   exact one-step lookahead rather than a learned estimate.
//!
//! **Batched labelling.** Rolling an episode is inherently sequential (each
//! action feeds the simulator), but the teacher-side queries are not: the
//! Eq.-1 value lookups over every afterstate, and — for plain-DAgger
//! episodes where the student drives — the teacher's labels and
//! distributions, are deferred and issued as **one matrix-matrix pass per
//! episode** ([`Policy::action_probs_batch`] / [`ValueEstimate::value_batch`]).
//! The per-obs implementation is kept verbatim in [`oracle`]; a parity
//! suite pins the batched path to it bit-for-bit.

use crate::env::{q_by_cloning, Env};
use crate::policy::Policy;
use crate::value::ValueEstimate;
use metis_nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled state collected from teacher rollouts.
#[derive(Debug, Clone)]
pub struct SampledState {
    pub obs: Vec<f64>,
    /// The teacher's (greedy) action at this state — the student's label.
    pub teacher_action: usize,
    /// Eq.-1 importance weight (1.0 when weighting is disabled).
    pub weight: f64,
}

/// Who drives the environment during collection.
///
/// Student policies are `Sync` so collection can fan episodes out across
/// threads (every deployed student — trees, DNNs — is plain data).
pub enum Controller<'a> {
    /// The teacher acts (round 0 of the conversion loop).
    Teacher,
    /// The student acts; the teacher only labels (plain DAgger).
    Student(&'a (dyn Policy + Sync)),
    /// The student acts until it deviates from the teacher; from then on
    /// the teacher takes over with the given probability per step. This is
    /// the paper's "DNN takes over on the deviated trajectory".
    StudentWithTakeover(&'a (dyn Policy + Sync), f64),
}

/// Collection parameters.
#[derive(Debug, Clone)]
pub struct CollectConfig {
    pub episodes: usize,
    pub max_steps: usize,
    pub gamma: f64,
    /// Compute Eq.-1 weights via env cloning (otherwise all 1.0).
    pub weighted: bool,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            episodes: 16,
            max_steps: 1000,
            gamma: 0.99,
            weighted: true,
        }
    }
}

/// Derive the RNG seed of one episode from the collection's base seed
/// (SplitMix64 finalizer — decorrelates episode streams regardless of
/// which thread runs them).
fn episode_seed(base: u64, episode: u64) -> u64 {
    crate::par::mix_seed(base ^ episode.wrapping_mul(0x9E3779B97F4A7C15))
}

/// Roll one labelled episode (the per-episode body of [`collect_seeded`]).
///
/// The environment is driven stepwise (it has to be), but every teacher
/// query that does not steer the trajectory is deferred and batched:
///
/// * the Eq.-1 lookahead's `V(s')` over all afterstates of the episode is
///   one [`ValueEstimate::value_batch`] call;
/// * the Eq.-1 teacher distributions defer in every controller mode (one
///   [`Policy::action_probs_batch`] pass at episode end);
/// * for [`Controller::Student`] (the teacher never steers), the labels
///   defer too — [`Policy::probs_and_greedy_batch`] answers both from a
///   single forward pass for softmax teachers.
///
/// Teacher-driven and takeover episodes still query the teacher's action
/// stepwise — it decides (or checks) the executed action. Output is
/// bit-identical to [`oracle::collect_episode`] for any policy honouring
/// the batch-parity contract.
fn collect_episode<E: Env, T: Policy + ?Sized, V: ValueEstimate + ?Sized>(
    env: &E,
    teacher: &T,
    value_fn: &V,
    controller: &Controller<'_>,
    cfg: &CollectConfig,
    rng: &mut StdRng,
) -> Vec<SampledState> {
    let mut env = env.clone();
    let mut obs = env.reset();
    let mut teacher_in_control = matches!(controller, Controller::Teacher);
    // The teacher must be consulted during rolling unless the student is
    // in sole control (plain DAgger).
    let stepwise_teacher = !matches!(controller, Controller::Student(_));
    // Deferring value lookups only pays when batching amortizes real
    // work; trivial (closure) estimates are queried inline, exactly as
    // the oracle does — identical values either way.
    let defer_values = cfg.weighted && value_fn.prefers_batch();

    let mut observations: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut probs: Vec<Vec<f64>> = Vec::new();
    // Afterstate table of the deferred Eq.-1 lookahead: per step and
    // action, the immediate reward and (for non-terminal transitions) an
    // index into the shared afterstate-observation pool.
    let mut q_rewards: Vec<Vec<f64>> = Vec::new();
    let mut q_next: Vec<Vec<Option<usize>>> = Vec::new();
    let mut afterstates: Vec<Vec<f64>> = Vec::new();

    for _ in 0..cfg.max_steps {
        let teacher_action = if stepwise_teacher {
            let a = teacher.act_greedy(&obs);
            labels.push(a);
            Some(a)
        } else {
            None
        };
        if cfg.weighted {
            // The env part of `q_by_cloning` (clone + step per action);
            // the value part is either deferred to one batched pass (real
            // critics) or evaluated inline (trivial estimates).
            let n_actions = env.n_actions();
            let mut rewards = Vec::with_capacity(n_actions);
            let mut next = Vec::with_capacity(n_actions);
            for a in 0..n_actions {
                let mut sim = env.clone();
                let step = sim.step(a);
                if step.done {
                    rewards.push(step.reward);
                    next.push(None);
                } else if defer_values {
                    rewards.push(step.reward);
                    afterstates.push(step.obs);
                    next.push(Some(afterstates.len() - 1));
                } else {
                    // Inline Q: same arithmetic as the deferred merge.
                    rewards.push(step.reward + cfg.gamma * value_fn.value(&step.obs));
                    next.push(None);
                }
            }
            q_rewards.push(rewards);
            q_next.push(next);
        }
        observations.push(obs.clone());

        let action = match controller {
            Controller::Teacher => teacher_action.unwrap(),
            Controller::Student(student) => student.act_greedy(&obs),
            Controller::StudentWithTakeover(student, p_takeover) => {
                let ta = teacher_action.unwrap();
                if teacher_in_control {
                    ta
                } else {
                    let sa = student.act_greedy(&obs);
                    if sa != ta && rng.gen_range(0.0..1.0) < *p_takeover {
                        teacher_in_control = true;
                        ta
                    } else {
                        sa
                    }
                }
            }
        };
        let step = env.step(action);
        obs = step.obs;
        if step.done {
            break;
        }
    }
    if observations.is_empty() {
        return Vec::new();
    }

    // Deferred teacher labelling — one batched query per episode. Only
    // the greedy action must be answered stepwise (it steers the env or
    // checks deviation); the Eq.-1 distributions are consumed solely in
    // the weight merge below, so they defer in *every* controller mode.
    // For softmax teachers `probs_and_greedy_batch` answers labels and
    // distributions from a single forward pass, where the per-obs path
    // pays one per state per quantity.
    if !stepwise_teacher || cfg.weighted {
        let m = Matrix::from_rows_vec(&observations);
        match (stepwise_teacher, cfg.weighted) {
            (true, true) => probs = teacher.action_probs_batch(&m),
            (false, true) => (probs, labels) = teacher.probs_and_greedy_batch(&m),
            (false, false) => labels = teacher.act_greedy_batch(&m),
            (true, false) => unreachable!(),
        }
    }
    // Deferred value lookups — one batched pass over all afterstates.
    let values = if afterstates.is_empty() {
        Vec::new()
    } else {
        value_fn.value_batch(&Matrix::from_rows_vec(&afterstates))
    };

    observations
        .into_iter()
        .enumerate()
        .map(|(t, obs)| {
            let weight = if cfg.weighted {
                // Reassemble Q(s,a) = r + γ·V(s') exactly as the per-obs
                // lookahead would (terminal transitions take the reward).
                let q: Vec<f64> = q_rewards[t]
                    .iter()
                    .zip(q_next[t].iter())
                    .map(|(&r, next)| match next {
                        None => r,
                        Some(i) => r + cfg.gamma * values[*i],
                    })
                    .collect();
                let v: f64 = probs[t].iter().zip(q.iter()).map(|(p, qa)| p * qa).sum();
                let qmin = q.iter().cloned().fold(f64::INFINITY, f64::min);
                (v - qmin).max(0.0)
            } else {
                1.0
            };
            SampledState {
                obs,
                teacher_action: labels[t],
                weight,
            }
        })
        .collect()
}

/// Collect labelled states by rolling through the environments in `pool`
/// (cycled). `value_fn` is the bootstrap state-value estimate used for the
/// Q lookahead (a critic wrapped in [`crate::NetworkValue`] for batched
/// lookups, any `Fn(&[f64]) -> f64 + Sync` closure, or `|_| 0.0` for
/// undiscounted myopia).
///
/// Episodes are independent: each gets its own RNG derived from `seed` and
/// its episode index, and results are merged in episode order — so the
/// output is **identical for every `threads` value** (0 = all cores).
/// Within each episode, teacher labelling is batched per episode; see
/// [`collect_episode`] — output is bit-identical to the per-obs
/// [`oracle::collect_seeded`].
pub fn collect_seeded<E: Env + Sync, T: Policy + Sync + ?Sized, V: ValueEstimate + ?Sized>(
    pool: &[E],
    teacher: &T,
    value_fn: &V,
    controller: &Controller<'_>,
    cfg: &CollectConfig,
    seed: u64,
    threads: usize,
) -> Vec<SampledState> {
    assert!(!pool.is_empty(), "collect: empty environment pool");
    let per_episode = crate::par::parallel_map_indexed(cfg.episodes, threads, |ep| {
        let mut rng = StdRng::seed_from_u64(episode_seed(seed, ep as u64));
        collect_episode(
            &pool[ep % pool.len()],
            teacher,
            value_fn,
            controller,
            cfg,
            &mut rng,
        )
    });
    per_episode.into_iter().flatten().collect()
}

/// Single-threaded [`collect_seeded`] driven by a caller-owned RNG (the
/// base seed is drawn from it, so successive calls differ as before).
pub fn collect<E: Env + Sync, T: Policy + Sync + ?Sized, V: ValueEstimate + ?Sized>(
    pool: &[E],
    teacher: &T,
    value_fn: &V,
    controller: &Controller<'_>,
    cfg: &CollectConfig,
    rng: &mut StdRng,
) -> Vec<SampledState> {
    use rand::RngCore;
    let seed = rng.next_u64();
    collect_seeded(pool, teacher, value_fn, controller, cfg, seed, 1)
}

/// The pre-refactor per-obs collection path, kept verbatim as the parity
/// oracle for the batched implementation (mirroring the CART builder's
/// reference splitter): every teacher label, distribution, and value
/// lookup is issued one observation at a time. The proptest parity suite
/// asserts `collect_seeded` == `oracle::collect_seeded` bit-for-bit.
#[doc(hidden)]
pub mod oracle {
    use super::*;

    /// Per-obs body of the original `collect_seeded`.
    pub fn collect_episode<E: Env, T: Policy + ?Sized, V: ValueEstimate + ?Sized>(
        env: &E,
        teacher: &T,
        value_fn: &V,
        controller: &Controller<'_>,
        cfg: &CollectConfig,
        rng: &mut StdRng,
    ) -> Vec<SampledState> {
        let mut out = Vec::new();
        let mut env = env.clone();
        let mut obs = env.reset();
        let mut teacher_in_control = matches!(controller, Controller::Teacher);
        for _ in 0..cfg.max_steps {
            let teacher_action = teacher.act_greedy(&obs);
            let weight = if cfg.weighted {
                let q = q_by_cloning(&env, |o: &[f64]| value_fn.value(o), cfg.gamma);
                let probs = teacher.action_probs(&obs);
                let v: f64 = probs.iter().zip(q.iter()).map(|(p, qa)| p * qa).sum();
                let qmin = q.iter().cloned().fold(f64::INFINITY, f64::min);
                (v - qmin).max(0.0)
            } else {
                1.0
            };
            out.push(SampledState {
                obs: obs.clone(),
                teacher_action,
                weight,
            });

            let action = match controller {
                Controller::Teacher => teacher_action,
                Controller::Student(student) => student.act_greedy(&obs),
                Controller::StudentWithTakeover(student, p_takeover) => {
                    if teacher_in_control {
                        teacher_action
                    } else {
                        let sa = student.act_greedy(&obs);
                        if sa != teacher_action && rng.gen_range(0.0..1.0) < *p_takeover {
                            teacher_in_control = true;
                            teacher_action
                        } else {
                            sa
                        }
                    }
                }
            };
            let step = env.step(action);
            obs = step.obs;
            if step.done {
                break;
            }
        }
        out
    }

    /// Per-obs `collect_seeded` (same episode seeding and merge order as
    /// the batched engine).
    pub fn collect_seeded<E: Env + Sync, T: Policy + Sync + ?Sized, V: ValueEstimate + ?Sized>(
        pool: &[E],
        teacher: &T,
        value_fn: &V,
        controller: &Controller<'_>,
        cfg: &CollectConfig,
        seed: u64,
        threads: usize,
    ) -> Vec<SampledState> {
        assert!(!pool.is_empty(), "collect: empty environment pool");
        let per_episode = crate::par::parallel_map_indexed(cfg.episodes, threads, |ep| {
            let mut rng = StdRng::seed_from_u64(episode_seed(seed, ep as u64));
            collect_episode(
                &pool[ep % pool.len()],
                teacher,
                value_fn,
                controller,
                cfg,
                &mut rng,
            )
        });
        per_episode.into_iter().flatten().collect()
    }
}

/// Eq. 1: resample `n` states with replacement, with probability
/// proportional to `weight`. Falls back to uniform when all weights are
/// (numerically) zero, which happens for teachers whose actions never
/// matter — better to keep the data than return nothing.
pub fn resample_by_weight(
    states: &[SampledState],
    n: usize,
    rng: &mut StdRng,
) -> Vec<SampledState> {
    assert!(!states.is_empty(), "resample_by_weight: empty input");
    let total: f64 = states.iter().map(|s| s.weight).sum();
    let mut out = Vec::with_capacity(n);
    if total <= 0.0 {
        for _ in 0..n {
            out.push(states[rng.gen_range(0..states.len())].clone());
        }
        return out;
    }
    // Cumulative distribution + binary search per draw.
    let mut cdf = Vec::with_capacity(states.len());
    let mut acc = 0.0;
    for s in states {
        acc += s.weight;
        cdf.push(acc);
    }
    for _ in 0..n {
        let u = rng.gen_range(0.0..total);
        let idx = match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(states.len() - 1);
        out.push(states[idx].clone());
    }
    out
}

/// Stack the observations of labelled states into a `(n, obs_dim)` matrix
/// for batched (re)labelling and evaluation.
pub fn states_matrix(states: &[SampledState]) -> Matrix {
    assert!(!states.is_empty(), "states_matrix: empty state list");
    Matrix::from_fn(states.len(), states[0].obs.len(), |r, c| states[r].obs[c])
}

/// Fraction of states where the student's greedy action matches the
/// teacher's — the "deviation is confined" convergence check of Step 1.
/// The student is queried in one batched pass over the whole dataset.
pub fn fidelity<P: Policy + Sync + ?Sized, Q: Policy + ?Sized>(
    states: &[SampledState],
    student: &P,
    teacher: &Q,
) -> f64 {
    fidelity_sharded(states, student, teacher, 1)
}

/// [`fidelity`] with the dataset sharded across `threads` workers
/// (0 = all cores) in fixed row blocks: each block is one batched student
/// query, blocks merge in row order, so the result is identical for any
/// thread count — and to the per-obs loop.
pub fn fidelity_sharded<P: Policy + Sync + ?Sized, Q: Policy + ?Sized>(
    states: &[SampledState],
    student: &P,
    _teacher: &Q,
    threads: usize,
) -> f64 {
    const BLOCK: usize = 256;
    if states.is_empty() {
        return 0.0;
    }
    let matrix = states_matrix(states);
    let n_blocks = states.len().div_ceil(BLOCK);
    let matches: usize = crate::par::parallel_map_indexed(n_blocks, threads, |b| {
        let lo = b * BLOCK;
        let hi = (lo + BLOCK).min(states.len());
        let actions = student.act_greedy_batch(&matrix.row_block(lo, hi));
        states[lo..hi]
            .iter()
            .zip(actions.iter())
            .filter(|(s, &a)| a == s.teacher_action)
            .count()
    })
    .into_iter()
    .sum();
    matches as f64 / states.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{BanditEnv, DelayedEnv};
    use crate::policy::{ConstantPolicy, Policy, UniformPolicy};
    use rand::SeedableRng;

    /// Teacher that plays the bandit optimally (reads the one-hot context).
    #[derive(Clone)]
    struct OracleBandit;
    impl Policy for OracleBandit {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            let idx = obs.iter().position(|&x| x == 1.0).unwrap();
            p[idx] = 1.0;
            p
        }
    }

    #[test]
    fn collect_labels_with_teacher_actions() {
        let pool = [DelayedEnv::new()];
        let teacher = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CollectConfig {
            episodes: 3,
            max_steps: 10,
            gamma: 0.9,
            weighted: false,
        };
        let states = collect(
            &pool,
            &teacher,
            &(|_: &[f64]| 0.0),
            &Controller::Teacher,
            &cfg,
            &mut rng,
        );
        assert_eq!(states.len(), 6); // 2 steps per episode
        assert!(states.iter().all(|s| s.teacher_action == 1));
        assert!(states.iter().all(|s| s.weight == 1.0));
    }

    #[test]
    fn weights_reflect_action_importance() {
        // In the bandit, picking right vs wrong changes reward by 1, so
        // V - min Q = P(correct) * 1 = 1 for the oracle teacher.
        let pool = [BanditEnv::new(3, 5, 2)];
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CollectConfig {
            episodes: 1,
            max_steps: 5,
            gamma: 0.9,
            weighted: true,
        };
        let states = collect(
            &pool,
            &OracleBandit,
            &(|_: &[f64]| 0.0),
            &Controller::Teacher,
            &cfg,
            &mut rng,
        );
        for s in &states {
            assert!((s.weight - 1.0).abs() < 1e-9, "weight {}", s.weight);
        }
        // A uniform teacher only gets 1/3 of the value: weight = 1/3.
        let u = UniformPolicy { n_actions: 3 };
        let states_u = collect(
            &pool,
            &u,
            &(|_: &[f64]| 0.0),
            &Controller::Teacher,
            &cfg,
            &mut rng,
        );
        for s in &states_u {
            assert!((s.weight - 1.0 / 3.0).abs() < 1e-9, "weight {}", s.weight);
        }
    }

    #[test]
    fn takeover_returns_to_teacher_distribution() {
        // Student always picks 0 (wrong on DelayedEnv); with takeover_prob
        // 1.0 the teacher immediately reclaims control after the first
        // deviating state, so the latch becomes... the student's action at
        // t=0 is recorded but control flips at the *deviating step itself*.
        let pool = [DelayedEnv::new()];
        let teacher = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        let student = ConstantPolicy {
            action: 0,
            n_actions: 2,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CollectConfig {
            episodes: 1,
            max_steps: 10,
            gamma: 0.9,
            weighted: false,
        };
        let states = collect(
            &pool,
            &teacher,
            &(|_: &[f64]| 0.0),
            &Controller::StudentWithTakeover(&student, 1.0),
            &cfg,
            &mut rng,
        );
        // With immediate takeover, the executed action at t=0 is the
        // teacher's (1), so the t=1 observation has latch == 1.
        assert_eq!(states.len(), 2);
        assert_eq!(states[1].obs, vec![1.0, 1.0]);
    }

    #[test]
    fn student_controller_visits_student_states() {
        let pool = [DelayedEnv::new()];
        let teacher = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        let student = ConstantPolicy {
            action: 0,
            n_actions: 2,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CollectConfig {
            episodes: 1,
            max_steps: 10,
            gamma: 0.9,
            weighted: false,
        };
        let states = collect(
            &pool,
            &teacher,
            &(|_: &[f64]| 0.0),
            &Controller::Student(&student),
            &cfg,
            &mut rng,
        );
        // Student drove: latch is 0 at t=1, but the label is still 1.
        assert_eq!(states[1].obs, vec![1.0, 0.0]);
        assert_eq!(states[1].teacher_action, 1);
    }

    #[test]
    fn resample_prefers_heavy_states() {
        let states = vec![
            SampledState {
                obs: vec![0.0],
                teacher_action: 0,
                weight: 0.01,
            },
            SampledState {
                obs: vec![1.0],
                teacher_action: 1,
                weight: 100.0,
            },
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let out = resample_by_weight(&states, 1000, &mut rng);
        let heavy = out.iter().filter(|s| s.teacher_action == 1).count();
        assert!(heavy > 990, "heavy sampled {heavy}/1000");
    }

    #[test]
    fn resample_uniform_fallback_on_zero_weights() {
        let states = vec![
            SampledState {
                obs: vec![0.0],
                teacher_action: 0,
                weight: 0.0,
            },
            SampledState {
                obs: vec![1.0],
                teacher_action: 1,
                weight: 0.0,
            },
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let out = resample_by_weight(&states, 500, &mut rng);
        let ones = out.iter().filter(|s| s.teacher_action == 1).count();
        assert!(ones > 150 && ones < 350, "expected ~250, got {ones}");
    }

    /// The batched collection engine must be bit-identical to the per-obs
    /// oracle across every controller mode, with a real network teacher
    /// (batched labels/probs) and a network critic (batched values).
    #[test]
    fn batched_collection_matches_oracle_bitwise() {
        use crate::policy::SoftmaxPolicy;
        use crate::value::NetworkValue;
        use metis_nn::{Activation, Mlp};

        let pool: Vec<BanditEnv> = (0..3).map(|s| BanditEnv::new(4, 12, s)).collect();
        let mut rng = StdRng::seed_from_u64(40);
        let teacher = SoftmaxPolicy::new(Mlp::new(
            &[4, 8, 4],
            Activation::Tanh,
            Activation::Linear,
            &mut rng,
        ));
        let student = SoftmaxPolicy::new(Mlp::new(
            &[4, 6, 4],
            Activation::Tanh,
            Activation::Linear,
            &mut rng,
        ));
        let critic = NetworkValue::new(Mlp::new(
            &[4, 6, 1],
            Activation::Tanh,
            Activation::Linear,
            &mut rng,
        ));
        let cfg = CollectConfig {
            episodes: 5,
            max_steps: 12,
            gamma: 0.97,
            weighted: true,
        };
        for controller in [
            Controller::Teacher,
            Controller::Student(&student),
            Controller::StudentWithTakeover(&student, 0.5),
        ] {
            let batched = collect_seeded(&pool, &teacher, &critic, &controller, &cfg, 7, 2);
            let oracle = oracle::collect_seeded(&pool, &teacher, &critic, &controller, &cfg, 7, 1);
            assert_eq!(batched.len(), oracle.len());
            for (b, o) in batched.iter().zip(oracle.iter()) {
                assert_eq!(b.obs, o.obs);
                assert_eq!(b.teacher_action, o.teacher_action);
                assert_eq!(
                    b.weight.to_bits(),
                    o.weight.to_bits(),
                    "weight diverges: {} vs {}",
                    b.weight,
                    o.weight
                );
            }
        }
    }

    #[test]
    fn fidelity_counts_matches() {
        let states = vec![
            SampledState {
                obs: vec![0.0, 0.0],
                teacher_action: 1,
                weight: 1.0,
            },
            SampledState {
                obs: vec![1.0, 1.0],
                teacher_action: 0,
                weight: 1.0,
            },
        ];
        let student = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        let teacher = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        assert_eq!(fidelity(&states, &student, &teacher), 0.5);
    }
}
