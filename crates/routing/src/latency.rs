//! Ground-truth latency model: per-link M/M/1-style queueing delay
//! (substitute for RouteNet's OMNeT++ packet-level dataset — DESIGN.md
//! §1.3, substitution 5). Delay grows as `1/(C − load)` and saturates with
//! a finite overload penalty so optimizers see a strong but bounded
//! gradient away from congestion.

use crate::demand::Demand;
use crate::topo::Topology;
use serde::{Deserialize, Serialize};

/// A routing assignment: one node path per demand (same order as the
/// demand list).
pub type Routing = Vec<Vec<usize>>;

/// Latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-hop propagation delay.
    pub propagation: f64,
    /// Utilization at which the queueing term is clamped (e.g. 0.95).
    pub max_utilization: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            propagation: 0.1,
            max_utilization: 0.95,
        }
    }
}

impl LatencyModel {
    /// Per-link loads induced by a routing (aligned with `topo.links()`).
    pub fn link_loads(&self, topo: &Topology, demands: &[Demand], routing: &Routing) -> Vec<f64> {
        assert_eq!(demands.len(), routing.len(), "routing/demand mismatch");
        let mut loads = vec![0.0; topo.n_links()];
        for (d, path) in demands.iter().zip(routing.iter()) {
            assert_eq!(path[0], d.src, "path must start at the demand source");
            assert_eq!(
                *path.last().unwrap(),
                d.dst,
                "path must end at the demand sink"
            );
            for l in topo.path_links(path) {
                loads[l] += d.volume;
            }
        }
        loads
    }

    /// Queueing + propagation delay of one link at a given load.
    pub fn link_delay(&self, capacity: f64, load: f64) -> f64 {
        let effective = load.min(capacity * self.max_utilization);
        let queueing = 1.0 / (capacity - effective);
        // Linear overload penalty keeps the model finite and monotone.
        let overload = (load - capacity * self.max_utilization).max(0.0) / capacity;
        self.propagation + queueing + 10.0 * overload
    }

    /// End-to-end latency of every routed demand.
    pub fn path_latencies(
        &self,
        topo: &Topology,
        demands: &[Demand],
        routing: &Routing,
    ) -> Vec<f64> {
        let loads = self.link_loads(topo, demands, routing);
        routing
            .iter()
            .map(|path| {
                topo.path_links(path)
                    .iter()
                    .map(|&l| self.link_delay(topo.link(l).capacity, loads[l]))
                    .sum()
            })
            .collect()
    }

    /// Latency of a hypothetical extra path under existing loads (used by
    /// the closed-loop optimizer when scoring candidates).
    pub fn path_latency_given_loads(
        &self,
        topo: &Topology,
        loads: &[f64],
        path: &[usize],
        extra_volume: f64,
    ) -> f64 {
        topo.path_links(path)
            .iter()
            .map(|&l| self.link_delay(topo.link(l).capacity, loads[l] + extra_volume))
            .sum()
    }

    /// Mean latency over all demands (the optimizer's objective).
    pub fn mean_latency(&self, topo: &Topology, demands: &[Demand], routing: &Routing) -> f64 {
        let lat = self.path_latencies(topo, demands, routing);
        lat.iter().sum::<f64>() / lat.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Demand;

    fn line_topo() -> Topology {
        Topology::from_undirected(3, &[(0, 1), (1, 2)], 10.0)
    }

    #[test]
    fn delay_monotone_in_load() {
        let m = LatencyModel::default();
        let mut last = 0.0;
        for load in [0.0, 2.0, 5.0, 8.0, 9.4, 9.6, 12.0] {
            let d = m.link_delay(10.0, load);
            assert!(d > last, "delay must increase with load");
            assert!(d.is_finite());
            last = d;
        }
    }

    #[test]
    fn loads_accumulate_over_shared_links() {
        let t = line_topo();
        let m = LatencyModel::default();
        let demands = vec![
            Demand {
                src: 0,
                dst: 2,
                volume: 2.0,
            },
            Demand {
                src: 1,
                dst: 2,
                volume: 3.0,
            },
        ];
        let routing = vec![vec![0, 1, 2], vec![1, 2]];
        let loads = m.link_loads(&t, &demands, &routing);
        let l12 = t.link_index(1, 2).unwrap();
        let l01 = t.link_index(0, 1).unwrap();
        assert_eq!(loads[l12], 5.0);
        assert_eq!(loads[l01], 2.0);
        // Reverse directions untouched.
        assert_eq!(loads[t.link_index(2, 1).unwrap()], 0.0);
    }

    #[test]
    fn path_latency_sums_hops() {
        let t = line_topo();
        let m = LatencyModel::default();
        let demands = vec![Demand {
            src: 0,
            dst: 2,
            volume: 1.0,
        }];
        let routing = vec![vec![0, 1, 2]];
        let lat = m.path_latencies(&t, &demands, &routing);
        let expected = 2.0 * (0.1 + 1.0 / 9.0);
        assert!((lat[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn congested_path_slower_than_idle() {
        let t = Topology::nsfnet();
        let m = LatencyModel::default();
        let demands = vec![
            Demand {
                src: 9,
                dst: 12,
                volume: 8.0,
            },
            Demand {
                src: 11,
                dst: 12,
                volume: 1.0,
            },
        ];
        let routing = vec![vec![9, 12], vec![11, 12]];
        let lat = m.path_latencies(&t, &demands, &routing);
        assert!(lat[0] > lat[1], "heavily loaded 9->12 must be slower");
    }

    #[test]
    fn candidate_scoring_includes_own_volume() {
        let t = line_topo();
        let m = LatencyModel::default();
        let loads = vec![0.0; t.n_links()];
        let quiet = m.path_latency_given_loads(&t, &loads, &[0, 1], 1.0);
        let heavy = m.path_latency_given_loads(&t, &loads, &[0, 1], 8.0);
        assert!(heavy > quiet);
    }

    #[test]
    #[should_panic(expected = "path must start")]
    fn mismatched_routing_rejected() {
        let t = line_topo();
        let m = LatencyModel::default();
        let demands = vec![Demand {
            src: 0,
            dst: 2,
            volume: 1.0,
        }];
        let _ = m.link_loads(&t, &demands, &vec![vec![1, 2]]);
    }
}
