//! # metis-routing — SDN routing substrate (RouteNet*)
//!
//! The global-system side of the Metis reproduction. The original RouteNet
//! is a GNN trained on OMNeT++ packet simulations of NSFNet; this crate
//! rebuilds the stack:
//!
//! * [`topo::Topology`] — directed-link graphs + the NSFNet topology of
//!   the paper's Figure 8,
//! * [`paths`] — BFS shortest paths and the "≤ 1 hop longer" candidate
//!   enumeration of §6.5,
//! * [`demand`] — traffic-matrix sampling (the 50-sample corpus),
//! * [`latency::LatencyModel`] — M/M/1-style queueing ground truth
//!   (substitute for the packet-level dataset; DESIGN.md §1.3),
//! * [`routenet::RouteNetModel`] — a path↔link message-passing latency
//!   predictor with twin f64/tape forwards (the tape version powers both
//!   training and the §4.2 mask search),
//! * [`routenet_star`] — the closed-loop greedy routing optimizer.

pub mod demand;
pub mod latency;
pub mod paths;
pub mod routenet;
pub mod routenet_star;
pub mod topo;

pub use demand::{demand_corpus, generate_demands, Demand, DemandSample};
pub use latency::{LatencyModel, Routing};
pub use paths::{all_paths_within, candidate_paths, shortest_hops};
pub use routenet::{connections, RouteNetModel, MP_ROUNDS};
pub use routenet_star::{candidates_for, optimize_routing, LatencyPredictor};
pub use topo::{Link, Topology};
