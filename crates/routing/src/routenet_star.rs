//! RouteNet* — the paper's closed-loop routing system (§5): a latency
//! predictor (the RouteNet model, or the queueing ground truth) feeding a
//! greedy path selector that iteratively assigns each demand the candidate
//! path with the lowest predicted end-to-end latency.

use crate::demand::Demand;
use crate::latency::{LatencyModel, Routing};
use crate::paths::candidate_paths;
use crate::routenet::RouteNetModel;
use crate::topo::Topology;

/// Anything that can score a full routing assignment.
pub trait LatencyPredictor {
    /// Per-demand predicted latency under `routing`.
    fn predict_latencies(&self, topo: &Topology, demands: &[Demand], routing: &Routing)
        -> Vec<f64>;
}

impl LatencyPredictor for LatencyModel {
    fn predict_latencies(
        &self,
        topo: &Topology,
        demands: &[Demand],
        routing: &Routing,
    ) -> Vec<f64> {
        self.path_latencies(topo, demands, routing)
    }
}

impl LatencyPredictor for RouteNetModel {
    fn predict_latencies(
        &self,
        topo: &Topology,
        demands: &[Demand],
        routing: &Routing,
    ) -> Vec<f64> {
        self.predict(topo, demands, routing)
    }
}

/// All candidate paths per demand (shortest + one-hop-longer rule).
pub fn candidates_for(topo: &Topology, demands: &[Demand]) -> Vec<Vec<Vec<usize>>> {
    demands
        .iter()
        .map(|d| {
            let c = candidate_paths(topo, d.src, d.dst);
            assert!(!c.is_empty(), "demand {}->{} unroutable", d.src, d.dst);
            c
        })
        .collect()
}

/// Closed-loop greedy optimization: start from shortest paths; for
/// `passes` rounds, revisit each demand and move it to the candidate that
/// minimizes the predictor's mean latency.
pub fn optimize_routing<P: LatencyPredictor>(
    topo: &Topology,
    demands: &[Demand],
    predictor: &P,
    passes: usize,
) -> Routing {
    let candidates = candidates_for(topo, demands);
    let mut routing: Routing = candidates.iter().map(|c| c[0].clone()).collect();
    for _ in 0..passes {
        for i in 0..demands.len() {
            let mut best_path = routing[i].clone();
            let mut best_score = f64::INFINITY;
            for cand in &candidates[i] {
                routing[i] = cand.clone();
                let lat = predictor.predict_latencies(topo, demands, &routing);
                let score: f64 = lat.iter().sum::<f64>() / lat.len() as f64;
                if score < best_score {
                    best_score = score;
                    best_path = cand.clone();
                }
            }
            routing[i] = best_path;
        }
    }
    routing
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond where the direct edge is shared by a heavy demand:
    /// 0-1 (direct) vs 0-2-1 (detour).
    fn diamond() -> Topology {
        Topology::from_undirected(3, &[(0, 1), (0, 2), (2, 1)], 10.0)
    }

    #[test]
    fn optimizer_routes_around_congestion() {
        let topo = diamond();
        let model = LatencyModel::default();
        // A huge demand pinned on 0->1; a light demand should detour.
        let demands = vec![
            Demand {
                src: 0,
                dst: 1,
                volume: 9.0,
            },
            Demand {
                src: 0,
                dst: 1,
                volume: 0.5,
            },
        ];
        // NOTE: both demands share the same (src,dst); the optimizer is
        // free to split them across candidates.
        let routing = optimize_routing(&topo, &demands, &model, 3);
        // One of the two demands must take the detour; the light one
        // benefits most, but either split beats both-on-direct.
        let both_direct = routing[0] == vec![0, 1] && routing[1] == vec![0, 1];
        assert!(!both_direct, "optimizer should split traffic: {routing:?}");
        let mean = model.mean_latency(&topo, &demands, &routing);
        let naive = model.mean_latency(&topo, &demands, &vec![vec![0, 1], vec![0, 1]]);
        assert!(mean < naive, "optimized {mean} should beat naive {naive}");
    }

    #[test]
    fn optimizer_prefers_shortest_when_idle() {
        let topo = Topology::nsfnet();
        let model = LatencyModel::default();
        let demands = vec![Demand {
            src: 6,
            dst: 9,
            volume: 0.1,
        }];
        let routing = optimize_routing(&topo, &demands, &model, 2);
        assert_eq!(routing[0].len() - 1, 3, "idle network: shortest path wins");
    }

    #[test]
    fn ground_truth_beats_or_matches_all_shortest() {
        let topo = Topology::nsfnet();
        let model = LatencyModel::default();
        let sample = crate::demand::demand_corpus(14, 25, 1, 77)[0].clone();
        let routing = optimize_routing(&topo, &sample.demands, &model, 2);
        let shortest: Routing = candidates_for(&topo, &sample.demands)
            .iter()
            .map(|c| c[0].clone())
            .collect();
        let opt = model.mean_latency(&topo, &sample.demands, &routing);
        let base = model.mean_latency(&topo, &sample.demands, &shortest);
        assert!(
            opt <= base + 1e-12,
            "optimizer must not lose to all-shortest"
        );
    }

    #[test]
    fn routenet_predictor_drives_the_loop() {
        // Even an untrained model must produce a *valid* routing.
        let topo = Topology::nsfnet();
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        let net = RouteNetModel::new(4, &mut rng);
        let sample = crate::demand::demand_corpus(14, 8, 1, 5)[0].clone();
        let routing = optimize_routing(&topo, &sample.demands, &net, 1);
        for (d, p) in sample.demands.iter().zip(routing.iter()) {
            assert_eq!(p[0], d.src);
            assert_eq!(*p.last().unwrap(), d.dst);
            let _ = topo.path_links(p); // walkable
        }
    }
}
