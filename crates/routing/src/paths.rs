//! Candidate-path computation: BFS shortest paths and a Yen-style
//! enumeration of all loop-free paths within one hop of the shortest — the
//! candidate rule of the paper's §6.5 ("all paths ⩽ 1 hop longer than the
//! shortest path").

use crate::topo::Topology;
use std::collections::VecDeque;

/// Hop count of the shortest path from `src` to `dst` (BFS), if reachable.
pub fn shortest_hops(topo: &Topology, src: usize, dst: usize) -> Option<usize> {
    if src == dst {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; topo.n_nodes()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &(v, _) in topo.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                if v == dst {
                    return Some(dist[v]);
                }
                q.push_back(v);
            }
        }
    }
    None
}

/// All simple (loop-free) node paths from `src` to `dst` with at most
/// `max_hops` hops, in deterministic order (lexicographic by node id).
pub fn all_paths_within(
    topo: &Topology,
    src: usize,
    dst: usize,
    max_hops: usize,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut visited = vec![false; topo.n_nodes()];
    let mut path = vec![src];
    visited[src] = true;
    fn dfs(
        topo: &Topology,
        dst: usize,
        max_hops: usize,
        visited: &mut Vec<bool>,
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let u = *path.last().unwrap();
        if u == dst {
            out.push(path.clone());
            return;
        }
        if path.len() > max_hops {
            return;
        }
        // Deterministic order: sort neighbor ids.
        let mut neigh: Vec<usize> = topo.neighbors(u).iter().map(|&(v, _)| v).collect();
        neigh.sort_unstable();
        for v in neigh {
            if !visited[v] {
                visited[v] = true;
                path.push(v);
                dfs(topo, dst, max_hops, visited, path, out);
                path.pop();
                visited[v] = false;
            }
        }
    }
    dfs(topo, dst, max_hops, &mut visited, &mut path, &mut out);
    out
}

/// The candidate set for a demand: every simple path at most one hop
/// longer than the shortest path (shortest paths first).
pub fn candidate_paths(topo: &Topology, src: usize, dst: usize) -> Vec<Vec<usize>> {
    let Some(h) = shortest_hops(topo, src, dst) else {
        return Vec::new();
    };
    let mut paths = all_paths_within(topo, src, dst, h + 1);
    paths.retain(|p| p.len() - 1 <= h + 1);
    paths.sort_by_key(|p| (p.len(), p.clone()));
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_hops_on_nsfnet() {
        let t = Topology::nsfnet();
        assert_eq!(shortest_hops(&t, 0, 0), Some(0));
        assert_eq!(shortest_hops(&t, 0, 1), Some(1));
        assert_eq!(shortest_hops(&t, 6, 9), Some(3)); // 6-7-10-9
    }

    #[test]
    fn candidates_include_shortest_and_plus_one() {
        let t = Topology::nsfnet();
        let cands = candidate_paths(&t, 6, 9);
        assert!(!cands.is_empty());
        let shortest = cands[0].len() - 1;
        assert_eq!(shortest, 3);
        assert!(cands.iter().all(|p| p.len() - 1 <= shortest + 1));
        // The Table-3 path 6-7-10-9 must be among them.
        assert!(cands.contains(&vec![6, 7, 10, 9]));
        // And the 6-4-... alternative from Figure 8(a).
        assert!(cands.iter().any(|p| p[1] == 4), "expected a 6->4 candidate");
    }

    #[test]
    fn paths_are_simple() {
        let t = Topology::nsfnet();
        for (s, d) in [(0, 9), (3, 13), (1, 12)] {
            for p in candidate_paths(&t, s, d) {
                let mut seen = std::collections::HashSet::new();
                assert!(p.iter().all(|n| seen.insert(*n)), "loop in path {p:?}");
                assert_eq!(p[0], s);
                assert_eq!(*p.last().unwrap(), d);
            }
        }
    }

    #[test]
    fn candidates_deterministic() {
        let t = Topology::nsfnet();
        assert_eq!(candidate_paths(&t, 2, 11), candidate_paths(&t, 2, 11));
    }

    #[test]
    fn unreachable_pairs_empty() {
        let t = Topology::from_undirected(4, &[(0, 1), (2, 3)], 1.0);
        assert_eq!(shortest_hops(&t, 0, 3), None);
        assert!(candidate_paths(&t, 0, 3).is_empty());
    }

    #[test]
    fn triangle_candidates() {
        // 0-1 direct (1 hop) and 0-2-1 (2 hops) both qualify.
        let t = Topology::from_undirected(3, &[(0, 1), (0, 2), (1, 2)], 1.0);
        let cands = candidate_paths(&t, 0, 1);
        assert_eq!(cands, vec![vec![0, 1], vec![0, 2, 1]]);
    }
}
