//! Network topology: nodes, directed links with capacities, and the NSFNet
//! 14-node topology of the RouteNet dataset (the paper's Figure 8).

use serde::{Deserialize, Serialize};

/// A directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub src: usize,
    pub dst: usize,
    pub capacity: f64,
}

/// A directed graph with per-link capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    n_nodes: usize,
    links: Vec<Link>,
    /// adjacency[u] = list of (neighbor, link index)
    adjacency: Vec<Vec<(usize, usize)>>,
}

impl Topology {
    /// Build from undirected edges; each becomes two directed links of the
    /// given capacity.
    pub fn from_undirected(n_nodes: usize, edges: &[(usize, usize)], capacity: f64) -> Self {
        let mut links = Vec::with_capacity(edges.len() * 2);
        let mut adjacency = vec![Vec::new(); n_nodes];
        for &(u, v) in edges {
            assert!(u < n_nodes && v < n_nodes && u != v, "bad edge ({u},{v})");
            adjacency[u].push((v, links.len()));
            links.push(Link {
                src: u,
                dst: v,
                capacity,
            });
            adjacency[v].push((u, links.len()));
            links.push(Link {
                src: v,
                dst: u,
                capacity,
            });
        }
        Topology {
            n_nodes,
            links,
            adjacency,
        }
    }

    /// The 14-node NSFNet topology (21 undirected edges) used by RouteNet
    /// and by the paper's Figure 8, with unit-free capacity 10 per link.
    pub fn nsfnet() -> Self {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 7),
            (2, 5),
            (3, 4),
            (3, 8),
            (4, 5),
            (4, 6),
            (5, 12),
            (5, 13),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (9, 10),
            (9, 12),
            (10, 11),
            (10, 13),
            (11, 12),
        ];
        Topology::from_undirected(14, &edges, 10.0)
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    pub fn link(&self, idx: usize) -> Link {
        self.links[idx]
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of `u` as (node, link index).
    pub fn neighbors(&self, u: usize) -> &[(usize, usize)] {
        &self.adjacency[u]
    }

    /// Index of the directed link `u -> v`, if it exists.
    pub fn link_index(&self, u: usize, v: usize) -> Option<usize> {
        self.adjacency[u]
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, l)| *l)
    }

    /// Convert a node path into the directed link indices along it.
    ///
    /// # Panics
    /// Panics if consecutive nodes are not adjacent.
    pub fn path_links(&self, node_path: &[usize]) -> Vec<usize> {
        node_path
            .windows(2)
            .map(|w| {
                self.link_index(w[0], w[1])
                    .unwrap_or_else(|| panic!("no link {} -> {}", w[0], w[1]))
            })
            .collect()
    }

    /// Human-readable link name like `"6->7"`.
    pub fn link_name(&self, idx: usize) -> String {
        format!("{}->{}", self.links[idx].src, self.links[idx].dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nsfnet_shape() {
        let t = Topology::nsfnet();
        assert_eq!(t.n_nodes(), 14);
        assert_eq!(t.n_links(), 42); // 21 undirected edges
    }

    #[test]
    fn nsfnet_contains_figure8_paths() {
        let t = Topology::nsfnet();
        // The concrete paths quoted in Table 3 must be walkable.
        for path in [
            vec![6, 7, 10, 9],
            vec![1, 7, 10, 9],
            vec![7, 10, 9, 12],
            vec![8, 3, 0, 2],
            vec![6, 4, 3, 0],
        ] {
            let links = t.path_links(&path);
            assert_eq!(links.len(), path.len() - 1);
        }
    }

    #[test]
    fn directed_links_are_paired() {
        let t = Topology::nsfnet();
        for idx in 0..t.n_links() {
            let l = t.link(idx);
            let back = t.link_index(l.dst, l.src).expect("reverse link exists");
            assert_ne!(back, idx);
        }
    }

    #[test]
    fn link_index_lookup() {
        let t = Topology::nsfnet();
        assert!(t.link_index(6, 7).is_some());
        assert!(t.link_index(6, 9).is_none());
        let idx = t.link_index(0, 1).unwrap();
        assert_eq!(t.link_name(idx), "0->1");
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn path_links_rejects_teleport() {
        let t = Topology::nsfnet();
        let _ = t.path_links(&[0, 13]);
    }
}
