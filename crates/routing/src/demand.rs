//! Traffic demands: src–dst volume pairs and the 50-sample corpus the
//! paper repeats its RouteNet* experiments over.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One traffic demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    pub src: usize,
    pub dst: usize,
    pub volume: f64,
}

/// A demand matrix sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandSample {
    pub demands: Vec<Demand>,
}

/// Generate one demand sample: `n_demands` distinct ordered pairs with
/// volumes uniform in `[lo, hi]`.
pub fn generate_demands(
    n_nodes: usize,
    n_demands: usize,
    lo: f64,
    hi: f64,
    rng: &mut StdRng,
) -> DemandSample {
    assert!(n_nodes >= 2 && lo > 0.0 && hi >= lo);
    let max_pairs = n_nodes * (n_nodes - 1);
    assert!(n_demands <= max_pairs, "more demands than ordered pairs");
    let mut pairs = std::collections::HashSet::new();
    let mut demands = Vec::with_capacity(n_demands);
    while demands.len() < n_demands {
        let src = rng.gen_range(0..n_nodes);
        let mut dst = rng.gen_range(0..n_nodes - 1);
        if dst >= src {
            dst += 1;
        }
        if pairs.insert((src, dst)) {
            demands.push(Demand {
                src,
                dst,
                volume: rng.gen_range(lo..=hi),
            });
        }
    }
    // Deterministic order regardless of hash iteration.
    demands.sort_by_key(|d| (d.src, d.dst));
    DemandSample { demands }
}

/// The 50-sample corpus used by the Figure-9 / Table-3 / Figure-18
/// experiments.
pub fn demand_corpus(
    n_nodes: usize,
    n_demands: usize,
    samples: usize,
    seed: u64,
) -> Vec<DemandSample> {
    (0..samples)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64) << 20) | 0x5A);
            // Volumes high enough that links congest and detours happen —
            // otherwise every decision is trivially "shortest path" and
            // there is nothing for the interpretation to find.
            generate_demands(n_nodes, n_demands, 1.0, 4.5, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demands_distinct_and_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = generate_demands(14, 40, 0.3, 2.5, &mut rng);
        assert_eq!(s.demands.len(), 40);
        let mut seen = std::collections::HashSet::new();
        for d in &s.demands {
            assert!(d.src != d.dst);
            assert!(d.src < 14 && d.dst < 14);
            assert!(d.volume > 0.0);
            assert!(seen.insert((d.src, d.dst)), "duplicate pair");
        }
    }

    #[test]
    fn corpus_is_deterministic_and_varied() {
        let a = demand_corpus(14, 30, 5, 42);
        let b = demand_corpus(14, 30, 5, 42);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different samples must differ");
    }

    #[test]
    #[should_panic(expected = "more demands")]
    fn too_many_demands_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = generate_demands(3, 7, 1.0, 2.0, &mut rng);
    }
}
