//! The RouteNet-style latency predictor: a path↔link message-passing model
//! (Rusek et al., SOSR 2019) sized down to this reproduction. Paths and
//! links carry hidden states; T rounds of message passing exchange state
//! across (path, link) connections; a readout predicts per-path delay.
//!
//! The forward pass exists twice: a fast `f64` version for inference and a
//! [`metis_nn::tape`] version used for both training and — crucially — the
//! Metis mask search, where each (path, link) connection's messages are
//! damped by a mask variable and gradients flow back to the mask
//! (§4.2 / Eq. 9 of the paper). A unit test pins the two implementations
//! to each other.

use crate::demand::Demand;
use crate::latency::Routing;
use crate::topo::Topology;
use metis_nn::tape::{Tape, Var};
use metis_nn::{Adam, Optimizer, ParamGrad};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Message-passing rounds.
pub const MP_ROUNDS: usize = 3;

/// The model: flat parameter vector + layout bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteNetModel {
    pub hidden: usize,
    params: Vec<f64>,
}

/// Parameter layout offsets.
struct Layout {
    w_path: usize,
    b_path: usize,
    w_link: usize,
    b_link: usize,
    w_out: usize,
    b_out: usize,
    total: usize,
}

impl RouteNetModel {
    fn layout(hidden: usize) -> Layout {
        let d = hidden;
        let in_dim = 2 * d + 1;
        let w_path = 0;
        let b_path = w_path + d * in_dim;
        let w_link = b_path + d;
        let b_link = w_link + d * in_dim;
        let w_out = b_link + d;
        let b_out = w_out + d;
        Layout {
            w_path,
            b_path,
            w_link,
            b_link,
            w_out,
            b_out,
            total: b_out + 1,
        }
    }

    /// Random initialization.
    pub fn new(hidden: usize, rng: &mut StdRng) -> Self {
        let layout = Self::layout(hidden);
        let scale = (1.0 / (2 * hidden + 1) as f64).sqrt();
        let params = (0..layout.total)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        RouteNetModel { hidden, params }
    }

    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Flat parameter vector (used by the mask search, which replays the
    /// forward pass on a tape with the parameters as constants).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Per-demand predicted delays (fast f64 forward, no masks).
    pub fn predict(&self, topo: &Topology, demands: &[Demand], routing: &Routing) -> Vec<f64> {
        self.forward_f64(topo, demands, routing, None)
    }

    /// f64 forward with an optional per-connection damping mask.
    /// `mask[i]` aligns with [`connections`]` (path-major order)`.
    pub fn forward_f64(
        &self,
        topo: &Topology,
        demands: &[Demand],
        routing: &Routing,
        mask: Option<&[f64]>,
    ) -> Vec<f64> {
        let d = self.hidden;
        let layout = Self::layout(d);
        let path_links: Vec<Vec<usize>> = routing.iter().map(|p| topo.path_links(p)).collect();
        if let Some(m) = mask {
            let n: usize = path_links.iter().map(|l| l.len()).sum();
            assert_eq!(m.len(), n, "mask length must equal connection count");
        }

        let mut h_link: Vec<Vec<f64>> = (0..topo.n_links())
            .map(|l| {
                let mut h = vec![0.0; d];
                h[0] = topo.link(l).capacity / 10.0;
                h
            })
            .collect();
        let mut h_path: Vec<Vec<f64>> = demands
            .iter()
            .map(|dm| {
                let mut h = vec![0.0; d];
                h[0] = dm.volume;
                h
            })
            .collect();

        let matvec = |w_off: usize, b_off: usize, input: &[f64]| -> Vec<f64> {
            let in_dim = 2 * d + 1;
            (0..d)
                .map(|r| {
                    let mut acc = self.params[b_off + r];
                    for (c, &x) in input.iter().enumerate() {
                        acc += self.params[w_off + r * in_dim + c] * x;
                    }
                    acc.tanh()
                })
                .collect()
        };

        for _ in 0..MP_ROUNDS {
            // Path updates.
            let mut conn = 0usize;
            let mut new_paths = Vec::with_capacity(h_path.len());
            for (p, links) in path_links.iter().enumerate() {
                let mut agg = vec![0.0; d];
                for &l in links {
                    let m = mask.map_or(1.0, |mm| mm[conn]);
                    conn += 1;
                    for k in 0..d {
                        agg[k] += m * h_link[l][k];
                    }
                }
                let mut input = h_path[p].clone();
                input.extend_from_slice(&agg);
                input.push(demands[p].volume);
                new_paths.push(matvec(layout.w_path, layout.b_path, &input));
            }
            h_path = new_paths;

            // Link updates.
            let mut agg_link = vec![vec![0.0; d]; topo.n_links()];
            let mut conn = 0usize;
            for (p, links) in path_links.iter().enumerate() {
                for &l in links {
                    let m = mask.map_or(1.0, |mm| mm[conn]);
                    conn += 1;
                    for k in 0..d {
                        agg_link[l][k] += m * h_path[p][k];
                    }
                }
            }
            let mut new_links = Vec::with_capacity(h_link.len());
            for l in 0..topo.n_links() {
                let mut input = h_link[l].clone();
                input.extend_from_slice(&agg_link[l]);
                input.push(topo.link(l).capacity / 10.0);
                new_links.push(matvec(layout.w_link, layout.b_link, &input));
            }
            h_link = new_links;
        }

        // Readout.
        h_path
            .iter()
            .map(|h| {
                let mut acc = self.params[layout.b_out];
                let w_out = &self.params[layout.w_out..layout.w_out + d];
                acc += w_out
                    .iter()
                    .zip(h.iter())
                    .map(|(w, hk)| w * hk)
                    .sum::<f64>();
                acc
            })
            .collect()
    }

    /// Tape forward with per-connection mask variables (the differentiable
    /// path used by training and by the Metis critical-connection search).
    /// Parameters enter as tape vars so the same code trains the model.
    pub fn forward_tape<'t>(
        &self,
        tape: &'t Tape,
        param_vars: &[Var<'t>],
        topo: &Topology,
        demands: &[Demand],
        routing: &Routing,
        mask: Option<&[Var<'t>]>,
    ) -> Vec<Var<'t>> {
        let d = self.hidden;
        let layout = Self::layout(d);
        assert_eq!(param_vars.len(), layout.total);
        let path_links: Vec<Vec<usize>> = routing.iter().map(|p| topo.path_links(p)).collect();

        let mut h_link: Vec<Vec<Var<'t>>> = (0..topo.n_links())
            .map(|l| {
                let mut h = vec![tape.var(0.0); d];
                h[0] = tape.var(topo.link(l).capacity / 10.0);
                h
            })
            .collect();
        let mut h_path: Vec<Vec<Var<'t>>> = demands
            .iter()
            .map(|dm| {
                let mut h = vec![tape.var(0.0); d];
                h[0] = tape.var(dm.volume);
                h
            })
            .collect();

        let matvec = |w_off: usize, b_off: usize, input: &[Var<'t>]| -> Vec<Var<'t>> {
            let in_dim = 2 * d + 1;
            (0..d)
                .map(|r| {
                    let mut acc = param_vars[b_off + r];
                    for (c, x) in input.iter().enumerate() {
                        acc = acc + param_vars[w_off + r * in_dim + c] * *x;
                    }
                    acc.tanh()
                })
                .collect()
        };

        for _ in 0..MP_ROUNDS {
            let mut conn = 0usize;
            let mut new_paths = Vec::with_capacity(h_path.len());
            for (p, links) in path_links.iter().enumerate() {
                let mut agg = vec![tape.var(0.0); d];
                for &l in links {
                    let m = mask.map(|mm| mm[conn]);
                    conn += 1;
                    for k in 0..d {
                        let term = match m {
                            Some(mv) => mv * h_link[l][k],
                            None => h_link[l][k],
                        };
                        agg[k] = agg[k] + term;
                    }
                }
                let mut input = h_path[p].clone();
                input.extend_from_slice(&agg);
                input.push(tape.var(demands[p].volume));
                new_paths.push(matvec(layout.w_path, layout.b_path, &input));
            }
            h_path = new_paths;

            let mut agg_link = vec![vec![tape.var(0.0); d]; topo.n_links()];
            let mut conn = 0usize;
            for (p, links) in path_links.iter().enumerate() {
                for &l in links {
                    let m = mask.map(|mm| mm[conn]);
                    conn += 1;
                    for k in 0..d {
                        let term = match m {
                            Some(mv) => mv * h_path[p][k],
                            None => h_path[p][k],
                        };
                        agg_link[l][k] = agg_link[l][k] + term;
                    }
                }
            }
            let mut new_links = Vec::with_capacity(h_link.len());
            for l in 0..topo.n_links() {
                let mut input = h_link[l].clone();
                input.extend_from_slice(&agg_link[l]);
                input.push(tape.var(topo.link(l).capacity / 10.0));
                new_links.push(matvec(layout.w_link, layout.b_link, &input));
            }
            h_link = new_links;
        }

        h_path
            .iter()
            .map(|h| {
                let mut acc = param_vars[layout.b_out];
                for k in 0..d {
                    acc = acc + param_vars[layout.w_out + k] * h[k];
                }
                acc
            })
            .collect()
    }

    /// Differentiable candidate scoring for the closed-loop mask search:
    /// run the masked message passing over the *chosen* routing, then score
    /// every candidate path of every demand by one path-update over the
    /// final (mask-shaped) link states plus the readout. Element `[i][c]`
    /// is the predicted delay of demand `i` on its `c`-th candidate.
    #[allow(clippy::too_many_arguments)] // mirrors the message-passing signature
    pub fn candidate_delays_tape<'t>(
        &self,
        tape: &'t Tape,
        param_vars: &[Var<'t>],
        topo: &Topology,
        demands: &[Demand],
        routing: &Routing,
        candidates: &[Vec<Vec<usize>>],
        mask: Option<&[Var<'t>]>,
    ) -> Vec<Vec<Var<'t>>> {
        let d = self.hidden;
        let layout = Self::layout(d);
        // Re-run the masked message passing to obtain final link states.
        // (Duplicates forward_tape's loop so we can keep the link states;
        // the duplication is pinned by tests against forward_tape.)
        let path_links: Vec<Vec<usize>> = routing.iter().map(|p| topo.path_links(p)).collect();
        let matvec = |w_off: usize, b_off: usize, input: &[Var<'t>]| -> Vec<Var<'t>> {
            let in_dim = 2 * d + 1;
            (0..d)
                .map(|r| {
                    let mut acc = param_vars[b_off + r];
                    for (c, x) in input.iter().enumerate() {
                        acc = acc + param_vars[w_off + r * in_dim + c] * *x;
                    }
                    acc.tanh()
                })
                .collect()
        };

        let mut h_link: Vec<Vec<Var<'t>>> = (0..topo.n_links())
            .map(|l| {
                let mut h = vec![tape.var(0.0); d];
                h[0] = tape.var(topo.link(l).capacity / 10.0);
                h
            })
            .collect();
        let mut h_path: Vec<Vec<Var<'t>>> = demands
            .iter()
            .map(|dm| {
                let mut h = vec![tape.var(0.0); d];
                h[0] = tape.var(dm.volume);
                h
            })
            .collect();
        for _ in 0..MP_ROUNDS {
            let mut conn = 0usize;
            let mut new_paths = Vec::with_capacity(h_path.len());
            for (p, links) in path_links.iter().enumerate() {
                let mut agg = vec![tape.var(0.0); d];
                for &l in links {
                    let m = mask.map(|mm| mm[conn]);
                    conn += 1;
                    for k in 0..d {
                        let term = match m {
                            Some(mv) => mv * h_link[l][k],
                            None => h_link[l][k],
                        };
                        agg[k] = agg[k] + term;
                    }
                }
                let mut input = h_path[p].clone();
                input.extend_from_slice(&agg);
                input.push(tape.var(demands[p].volume));
                new_paths.push(matvec(layout.w_path, layout.b_path, &input));
            }
            h_path = new_paths;

            let mut agg_link = vec![vec![tape.var(0.0); d]; topo.n_links()];
            let mut conn = 0usize;
            for (p, links) in path_links.iter().enumerate() {
                for &l in links {
                    let m = mask.map(|mm| mm[conn]);
                    conn += 1;
                    for k in 0..d {
                        let term = match m {
                            Some(mv) => mv * h_path[p][k],
                            None => h_path[p][k],
                        };
                        agg_link[l][k] = agg_link[l][k] + term;
                    }
                }
            }
            let mut new_links = Vec::with_capacity(h_link.len());
            for l in 0..topo.n_links() {
                let mut input = h_link[l].clone();
                input.extend_from_slice(&agg_link[l]);
                input.push(tape.var(topo.link(l).capacity / 10.0));
                new_links.push(matvec(layout.w_link, layout.b_link, &input));
            }
            h_link = new_links;
        }

        // Candidate scoring: one path update from scratch over the final
        // link states, then the readout.
        demands
            .iter()
            .enumerate()
            .map(|(i, dm)| {
                candidates[i]
                    .iter()
                    .map(|cand| {
                        let mut h = vec![tape.var(0.0); d];
                        h[0] = tape.var(dm.volume);
                        let mut agg = vec![tape.var(0.0); d];
                        for l in topo.path_links(cand) {
                            for k in 0..d {
                                agg[k] = agg[k] + h_link[l][k];
                            }
                        }
                        let mut input = h;
                        input.extend_from_slice(&agg);
                        input.push(tape.var(dm.volume));
                        let out = matvec(layout.w_path, layout.b_path, &input);
                        let mut acc = param_vars[layout.b_out];
                        for k in 0..d {
                            acc = acc + param_vars[layout.w_out + k] * out[k];
                        }
                        acc
                    })
                    .collect()
            })
            .collect()
    }

    /// One training sample: (demands, routing, ground-truth delays).
    pub fn train(
        &mut self,
        topo: &Topology,
        samples: &[(Vec<Demand>, Routing, Vec<f64>)],
        epochs: usize,
        lr: f64,
    ) -> Vec<f64> {
        let mut opt = Adam::new(lr);
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            for (demands, routing, truth) in samples {
                let tape = Tape::new();
                let param_vars = tape.vars(&self.params);
                let pred = self.forward_tape(&tape, &param_vars, topo, demands, routing, None);
                // MSE over the sample's demands.
                let mut loss = tape.var(0.0);
                for (p, &t) in pred.iter().zip(truth.iter()) {
                    loss = loss + (*p - t).square();
                }
                loss = loss / truth.len() as f64;
                epoch_loss += loss.value();
                let grads = loss.grad();
                let mut grad_vec: Vec<f64> = param_vars.iter().map(|v| grads.wrt(*v)).collect();
                let mut pg = [ParamGrad {
                    param: &mut self.params,
                    grad: &mut grad_vec,
                }];
                opt.step(&mut pg);
            }
            history.push(epoch_loss / samples.len() as f64);
        }
        history
    }
}

/// The (path, link) connection list of a routing in the canonical
/// path-major order shared by the model, the hypergraph formulation and
/// the mask search.
pub fn connections(topo: &Topology, routing: &Routing) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (p, path) in routing.iter().enumerate() {
        for l in topo.path_links(path) {
            out.push((p, l));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::paths::candidate_paths;
    use rand::SeedableRng;

    fn setup() -> (Topology, Vec<Demand>, Routing) {
        let topo = Topology::nsfnet();
        let demands = vec![
            Demand {
                src: 6,
                dst: 9,
                volume: 1.0,
            },
            Demand {
                src: 0,
                dst: 12,
                volume: 2.0,
            },
            Demand {
                src: 3,
                dst: 10,
                volume: 0.5,
            },
        ];
        let routing: Routing = demands
            .iter()
            .map(|d| candidate_paths(&topo, d.src, d.dst)[0].clone())
            .collect();
        (topo, demands, routing)
    }

    #[test]
    fn tape_and_f64_forwards_agree() {
        let (topo, demands, routing) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let model = RouteNetModel::new(6, &mut rng);
        let fast = model.predict(&topo, &demands, &routing);
        let tape = Tape::new();
        let pv = tape.vars(&model.params);
        let slow = model.forward_tape(&tape, &pv, &topo, &demands, &routing, None);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!(
                (a - b.value()).abs() < 1e-12,
                "forwards diverge: {a} vs {}",
                b.value()
            );
        }
    }

    #[test]
    fn masked_forward_matches_all_ones_mask() {
        let (topo, demands, routing) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let model = RouteNetModel::new(4, &mut rng);
        let n_conn = connections(&topo, &routing).len();
        let unmasked = model.predict(&topo, &demands, &routing);
        let masked = model.forward_f64(&topo, &demands, &routing, Some(&vec![1.0; n_conn]));
        for (a, b) in unmasked.iter().zip(masked.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // A zeroed mask must change the output.
        let zeroed = model.forward_f64(&topo, &demands, &routing, Some(&vec![0.0; n_conn]));
        assert!(unmasked
            .iter()
            .zip(zeroed.iter())
            .any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn training_reduces_loss_and_correlates() {
        let topo = Topology::nsfnet();
        let model_gt = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        // Build a small training corpus of random routings.
        let mut samples = Vec::new();
        for i in 0..6 {
            let sample = crate::demand::demand_corpus(14, 12, 1, 100 + i)[0].clone();
            let routing: Routing = sample
                .demands
                .iter()
                .map(|d| {
                    let cands = candidate_paths(&topo, d.src, d.dst);
                    cands[rng.gen_range(0..cands.len())].clone()
                })
                .collect();
            let truth = model_gt.path_latencies(&topo, &sample.demands, &routing);
            samples.push((sample.demands, routing, truth));
        }
        let mut net = RouteNetModel::new(6, &mut rng);
        let history = net.train(&topo, &samples, 60, 0.01);
        assert!(
            history.last().unwrap() < &(history[0] * 0.5),
            "training should at least halve the loss: {:?} -> {:?}",
            history[0],
            history.last().unwrap()
        );
        // Predictions must correlate with ground truth on the train set.
        let (demands, routing, truth) = &samples[0];
        let pred = net.predict(&topo, demands, routing);
        let corr = pearson(&pred, truth);
        assert!(corr > 0.5, "prediction correlation too weak: {corr}");
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    #[test]
    fn connections_path_major_order() {
        let (topo, _, routing) = setup();
        let conns = connections(&topo, &routing);
        // Path indices appear in non-decreasing order.
        assert!(conns.windows(2).all(|w| w[0].0 <= w[1].0));
        let total: usize = routing.iter().map(|p| p.len() - 1).sum();
        assert_eq!(conns.len(), total);
    }

    #[test]
    fn param_count_matches_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = RouteNetModel::new(8, &mut rng);
        // 2 * (d*(2d+1) + d) + d + 1 with d=8.
        assert_eq!(m.param_count(), 2 * (8 * 17 + 8) + 8 + 1);
    }
}
