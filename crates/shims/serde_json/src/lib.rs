//! Offline stand-in for `serde_json`: compact JSON printing and parsing
//! over the `serde` shim's [`Value`] tree.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                // Match serde_json's default behaviour for non-finite floats.
                out.push_str("null");
            } else if n.fract() == 0.0
                && n.abs() < 9.007_199_254_740_992e15
                && (*n != 0.0 || n.is_sign_positive())
            {
                // Integral values print without the trailing `.0`.
                out.push_str(&format!("{}", *n as i64));
            } else {
                // `{:?}` is Rust's shortest round-trip float form, which is
                // valid JSON for finite values.
                out.push_str(&format!("{n:?}"));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!("unexpected input {other:?}"))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let slice = &self.bytes[start..];
                    let ch = std::str::from_utf8(&slice[..slice.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .or_else(|| {
                            (1..4.min(slice.len() + 1))
                                .filter_map(|n| {
                                    std::str::from_utf8(&slice[..n])
                                        .ok()
                                        .and_then(|s| s.chars().next())
                                })
                                .next()
                        })
                        .ok_or_else(|| Error::custom("invalid UTF-8 in string"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<f64> = vec![0.1, -2.5e10, 3.0];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let s = "he\"llo\n\\ wörld".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);

        let o: Option<Vec<usize>> = Some(vec![1, 2, 3]);
        let back: Option<Vec<usize>> = from_str(&to_string(&o).unwrap()).unwrap();
        assert_eq!(o, back);
        let n: Option<Vec<usize>> = None;
        let back: Option<Vec<usize>> = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn float_precision_roundtrips() {
        for x in [
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            1e308,
            -0.0,
            123_456_789.123_456_79,
        ] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "value {x}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
