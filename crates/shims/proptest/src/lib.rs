//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro over functions whose arguments are `pat in strategy`
//! bindings, range strategies over numeric types, fixed-length
//! `collection::vec`, and `prop_assert!`/`prop_assert_eq!`. Each property
//! runs a fixed number of deterministic cases (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// Number of cases run per property.
pub const CASES: usize = 64;

/// A source of random test inputs.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Fixed-length vector strategy.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    0xC0FFEE ^ stringify!($name).len() as u64,
                );
                for __case in 0..$crate::CASES {
                    #[allow(unused_parens)]
                    let ($($pat),*) = ($($crate::Strategy::sample(&($strat), &mut __rng)),*);
                    $body
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds.
        #[test]
        fn prop_ranges_in_bounds(x in 0.0_f64..5.0, n in 1usize..10) {
            prop_assert!((0.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn prop_vec_has_fixed_len(v in collection::vec(0usize..6, 48)) {
            prop_assert_eq!(v.len(), 48);
            prop_assert!(v.iter().all(|&e| e < 6));
        }
    }
}
