//! Offline stand-in for `serde_derive`, written against the raw
//! `proc_macro` API (no `syn`/`quote` available offline).
//!
//! Supports exactly the shapes this workspace derives on:
//! * structs with named fields,
//! * tuple structs,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generics are not supported (none of the derived types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    Struct { fields: Vec<Field> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Skip `#[...]` attribute token pairs starting at `i`, reporting whether
/// one of them was `#[serde(skip)]`.
fn skip_attrs_flagged(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let text = g.stream().to_string().replace(' ', "");
                if text == "serde(skip)" {
                    skip = true;
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Skip `#[...]` attribute token pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: usize) -> usize {
    skip_attrs_flagged(tokens, i).0
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated items in a token sequence, tracking
/// angle-bracket depth so `Vec<(A, B)>` style types don't confuse it.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_any = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => items += 1,
                _ => saw_any = true,
            },
            _ => saw_any = true,
        }
    }
    // Trailing comma produces an empty last item.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' && depth == 0 {
            items -= 1;
        }
    }
    let _ = saw_any;
    items
}

/// Parse `name: Type, ...` named-field lists.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (next, skip) = skip_attrs_flagged(tokens, i);
        i = skip_vis(tokens, next);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
        i += 1;
        // Expect ':' then skip the type up to the next top-level ','.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!(
                "serde_derive shim: expected `:` after field `{}`",
                fields.last().unwrap().name
            ),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_shape(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                (
                    name,
                    Shape::Struct {
                        fields: parse_named_fields(&inner),
                    },
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                (
                    name,
                    Shape::TupleStruct {
                        arity: count_top_level_items(&inner),
                    },
                )
            }
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive shim: expected enum body");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < inner.len() {
                j = skip_attrs(&inner, j);
                let Some(TokenTree::Ident(vname)) = inner.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                let kind = match inner.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let vt: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantKind::Tuple(count_top_level_items(&vt))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let vt: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantKind::Struct(parse_named_fields(&vt))
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: vname, kind });
                // Skip to past the next top-level ','.
                while j < inner.len() {
                    if let TokenTree::Punct(p) = &inner[j] {
                        if p.as_char() == ',' {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            (name, Shape::Enum { variants })
        }
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_shape(input);
    let body = match &shape {
        Shape::Struct { fields } => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n",
                        f = f.name
                    )
                })
                .collect();
            format!(
                "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(obj)"
            )
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            if *arity == 1 {
                items[0].clone()
            } else {
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum { variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    ),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds =
                            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let pushes: String = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));",
                                    f = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{ let mut __obj: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__obj))]) }}\n",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_shape(input);
    let body = match &shape {
        Shape::Struct { fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{f}: Default::default(),\n", f = f.name)
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::get_field(__obj, \"{f}\")?)?,\n",
                            f = f.name
                        )
                    }
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\nOk({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct { arity } => {
            if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\nif __arr.len() != {arity} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\nOk({name}({items}))",
                    items = items.join(", ")
                )
            }
        }
        Shape::Enum { variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(arity) => {
                        let expr = if *arity == 1 {
                            format!("Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?))", v = v.name)
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            format!(
                                "{{ let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array\"))?; if __arr.len() != {arity} {{ return Err(::serde::Error::custom(\"wrong variant arity\")); }} Ok({name}::{v}({items})) }}",
                                v = v.name,
                                items = items.join(", ")
                            )
                        };
                        Some(format!("\"{v}\" => return {expr},\n", v = v.name))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{f}: Default::default(),", f = f.name)
                                } else {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(__fields, \"{f}\")?)?,",
                                        f = f.name
                                    )
                                }
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __fields = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object\"))?; return Ok({name}::{v} {{ {inits} }}); }}\n",
                            v = v.name
                        ))
                    }
                })
                .collect();
            format!(
                "if let Some(__s) = __v.as_str() {{\n match __s {{\n{unit_arms} _ => {{}} }}\n}}\nif let Some(__obj) = __v.as_object() {{\n if __obj.len() == 1 {{\n let (__tag, __inner) = &__obj[0];\n match __tag.as_str() {{\n{data_arms} _ => {{}} }}\n }}\n}}\nErr(::serde::Error::custom(\"no matching variant for {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
