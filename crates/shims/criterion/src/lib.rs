//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! warmup + timed-samples harness that prints mean/median per bench.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new(function: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{p}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one invocation per sample after a short warmup.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: until ~50 ms or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm = 0;
        while warm < 3 && warm_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(f());
            warm += 1;
        }
        self.durations.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        durations: Vec::new(),
    };
    f(&mut b);
    if b.durations.is_empty() {
        println!("bench {name:<48} (no samples)");
        return;
    }
    let mut sorted = b.durations.clone();
    sorted.sort();
    let total: Duration = b.durations.iter().sum();
    let mean = total / b.durations.len() as u32;
    let median = sorted[sorted.len() / 2];
    println!(
        "bench {name:<48} mean {:>12}   median {:>12}   ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        b.durations.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("--- group {name} ---");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.group, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.group, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
