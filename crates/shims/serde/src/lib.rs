//! Offline stand-in for `serde`.
//!
//! Implements a value-tree serialization model sufficient for the derive
//! use in this workspace: `#[derive(Serialize, Deserialize)]` on structs
//! with named fields and on enums with unit / tuple / struct variants,
//! serialized to and from the JSON-like [`Value`] tree that the
//! `serde_json` shim prints and parses.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            // serde_json prints non-finite floats as null.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Lookup helper used by derived `Deserialize` impls.
pub fn get_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON documents (e.g. the bench regression guard reading BENCH_*.json).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::custom("expected number"))?;
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_value(v)?))
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected 2-tuple"))?;
        if arr.len() != 2 {
            return Err(Error::custom("expected 2-tuple"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}
