//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the (small) API subset the workspace actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges. The generator is xoshiro256++ seeded via SplitMix64 —
//! different output stream than upstream `StdRng` (ChaCha12), but the same
//! statistical quality class for simulation purposes.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range: any value is uniform.
                    return rng.next_u64() as $t;
                }
                let v = uniform_u128_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, bound)` via 64-bit rejection sampling.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Lemire-style multiply-shift with rejection on the low word.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return m >> 64;
            }
        }
    } else {
        // Only reachable for full-width u128-ish spans, which the workspace
        // never uses; keep a simple correct fallback.
        loop {
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if x < bound * (u128::MAX / bound) {
                return x % bound;
            }
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($t:ty, $bits:expr) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Uniform in [0, 1) with 53 (resp. 24) bits of precision.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let v = lo + unit * (hi - lo);
                // Floating rounding can land exactly on `hi`; clamp back
                // inside the half-open range (next_down is sign-correct).
                if v < hi {
                    v
                } else {
                    hi.next_down()
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    };
}

impl_sample_uniform_float!(f64, 53);
impl_sample_uniform_float!(f32, 24);

/// User-facing RNG methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0.0..1.0) == c.gen_range(0.0..1.0))
            .count();
        assert!(same < 5);
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn negative_float_ranges_stay_half_open() {
        // Regression: the on-boundary clamp must step *into* the range for
        // negative upper bounds too (bit-decrement goes the wrong way).
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0..-1.0);
            assert!((-2.0..-1.0).contains(&v), "out of range: {v}");
        }
        // Degenerate-width range exercises the clamp directly.
        let hi = -1.0_f64;
        let lo = f64::from_bits(hi.to_bits() + 1); // next float below -1.0
        for _ in 0..100 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "clamp escaped: {v}");
        }
    }

    #[test]
    fn float_ranges_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0_f64;
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            let w = rng.gen_range(1.0..=3.0);
            assert!((1.0..=3.0).contains(&w));
        }
    }
}
