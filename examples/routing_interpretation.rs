//! Interpret a RouteNet*-style routing optimizer with the hypergraph
//! critical-connection search (§4 / §6.1 of the paper).
//!
//! Builds NSFNet, trains the message-passing latency predictor against the
//! queueing ground truth, optimizes a routing, and prints the Table-3
//! style report: which (path, link) decisions are critical and why.
//!
//! Run with: `cargo run --release --example routing_interpretation`

use metis::core::{interpret_routing, mask_mass_per_link, pearson, routing_hypergraph};
use metis::hypergraph::MaskConfig;
use metis::routing::{
    candidate_paths, demand_corpus, optimize_routing, LatencyModel, RouteNetModel, Routing,
    Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let mut rng = StdRng::seed_from_u64(42);

    // Train the RouteNet surrogate on random routings of random demands.
    println!("training the RouteNet latency predictor...");
    let mut train_data = Vec::new();
    for i in 0..6 {
        let sample = demand_corpus(14, 12, 1, 100 + i)[0].clone();
        let routing: Routing = sample
            .demands
            .iter()
            .map(|d| {
                let c = candidate_paths(&topo, d.src, d.dst);
                c[rng.gen_range(0..c.len())].clone()
            })
            .collect();
        let truth = latency.path_latencies(&topo, &sample.demands, &routing);
        train_data.push((sample.demands, routing, truth));
    }
    let mut model = RouteNetModel::new(6, &mut rng);
    let history = model.train(&topo, &train_data, 40, 0.01);
    println!(
        "training loss: {:.4} -> {:.4}",
        history[0],
        history.last().unwrap()
    );

    // A demand sample, routed by the closed loop.
    let sample = demand_corpus(14, 12, 1, 7)[0].clone();
    let routing = optimize_routing(&topo, &sample.demands, &latency, 1);
    let h = routing_hypergraph(&topo, &sample.demands, &routing);
    println!(
        "\nformulated hypergraph: {} links (vertices), {} paths (hyperedges), {} connections",
        h.n_vertices(),
        h.n_edges(),
        h.n_connections()
    );

    // Critical-connection search (Table 4 defaults: lambda1=0.25, lambda2=1).
    println!("running the critical-connection search...");
    let cfg = MaskConfig {
        steps: 150,
        ..Default::default()
    };
    let (result, report) = interpret_routing(&model, &topo, &sample.demands, &routing, &cfg, 5);

    println!("\n=== top-5 critical connections (cf. paper Table 3) ===");
    println!(
        "{:<22} {:<8} {:>7}  interpretation",
        "routing path", "link", "mask"
    );
    for r in &report {
        println!("{:<22} {:<8} {:>7.3}  {}", r.path, r.link, r.mask, r.kind);
    }

    // Figure 9(b): mask mass correlates with link traffic.
    let mass = mask_mass_per_link(&topo, &routing, &result.mask);
    let loads = latency.link_loads(&topo, &sample.demands, &routing);
    let used: Vec<usize> = (0..topo.n_links()).filter(|&l| loads[l] > 0.0).collect();
    let m: Vec<f64> = used.iter().map(|&l| mass[l]).collect();
    let t: Vec<f64> = used.iter().map(|&l| loads[l]).collect();
    println!(
        "\nPearson r(per-link mask mass, link traffic) = {:.2} (paper: 0.81)",
        pearson(&m, &t)
    );
}
