//! Interpret a Pensieve-style ABR agent (§6.1 of the paper, scaled down so
//! the example runs in a couple of minutes).
//!
//! Trains the deep-RL teacher on synthetic HSDPA-like traces, converts it
//! to a 50-leaf decision tree, prints the top layers with bitrate decision
//! frequencies (the paper's Figure 7), and compares QoE against the
//! heuristic baselines.
//!
//! Run with: `cargo run --release --example abr_interpretation`

use metis::abr::{
    baseline_by_name, baseline_names, bitrate_labels, env_pool, feature_names, hsdpa_corpus,
    pensieve_agent, train_pensieve, NetworkTrace, PensieveArch, VideoModel,
};
use metis::core::{ConversionConfig, ConversionPipeline};
use metis::dt::{render, RenderOptions};
use metis::rl::Policy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn mean_qoe(pool: &[metis::abr::AbrEnv], policy: &(impl Policy + Sync + ?Sized)) -> f64 {
    // The engine's parallel pool evaluator: greedy episodes fan across all
    // cores, scores merge in trace order.
    let total: f64 = metis::rl::evaluate_pool(pool, policy, 1000, 0, 0)
        .iter()
        .zip(pool)
        .map(|(score, e)| score.total_reward / e.video().n_chunks() as f64)
        .sum();
    total / pool.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let video = Arc::new(VideoModel::pensieve_default(7));
    let train: Vec<Arc<NetworkTrace>> = hsdpa_corpus(10, 1).into_iter().map(Arc::new).collect();
    let test: Vec<Arc<NetworkTrace>> = hsdpa_corpus(15, 2).into_iter().map(Arc::new).collect();
    let train_pool = env_pool(&video, &train);
    let test_pool = env_pool(&video, &test);

    println!("training the Pensieve teacher (this takes a moment)...");
    let mut agent = pensieve_agent(PensieveArch::Original, 32, &mut rng);
    train_pensieve(&mut agent, &train_pool, 250, &mut rng);

    println!("converting the DNN into a decision tree (Metis §3.2)...");
    let cfg = ConversionConfig {
        max_leaf_nodes: 50,
        episodes_per_round: 10,
        max_steps: 512,
        ..Default::default()
    };
    // The unified engine: collection rounds fan across all cores, the
    // split search parallelizes per feature — same tree for any core
    // count at a fixed seed.
    let result = ConversionPipeline::with_value(&train_pool, &agent.policy, agent.value_estimate())
        .conversion(cfg)
        .seed(42)
        .run();
    println!(
        "collected {} states in {:.2}s, fitted in {:.2}s ({:.0} samples/s on {} threads)",
        result.stats.states_collected,
        result.stats.collect_s,
        result.stats.fit_s,
        result.stats.samples_per_sec(),
        result.stats.threads
    );

    println!("\n=== top layers of the interpretation (cf. paper Figure 7) ===");
    let mut tree = result.policy.tree.clone();
    tree.feature_names = Some(feature_names());
    let opts = RenderOptions {
        max_depth: Some(3),
        class_labels: Some(bitrate_labels()),
        show_frequencies: true,
    };
    println!("{}", render(&tree, &opts));

    println!("=== QoE on held-out traces (mean per chunk) ===");
    for name in baseline_names() {
        let b = baseline_by_name(name);
        println!("{:<16} {:+.4}", name, mean_qoe(&test_pool, b.as_ref()));
    }
    let q_dnn = mean_qoe(&test_pool, &agent.policy);
    let q_tree = mean_qoe(&test_pool, &result.policy);
    println!("{:<16} {:+.4}", "Pensieve (DNN)", q_dnn);
    println!(
        "{:<16} {:+.4}  ({:+.2}% vs DNN)",
        "Metis tree",
        q_tree,
        (q_tree - q_dnn) / q_dnn.abs().max(1e-9) * 100.0
    );
}
