//! Interpret an AuTO-style flow scheduler (§6.4 of the paper): train a
//! small lRLA teacher on the fabric simulator, convert it to a decision
//! tree, and compare flow completion times and decision latencies.
//!
//! Run with: `cargo run --release --example flow_scheduling`

use metis::core::{measure_latency, ConversionConfig, ConversionPipeline};
use metis::dt::CompiledTree;
use metis::flowsched::{
    decode_action, generate_flows, lrla_agent, lrla_state, FabricConfig, FctStats, FlowSim,
    LrlaEnv, MlfqThresholds, SimConfig, SizeDistribution, LRLA_STATE_DIM,
};
use metis::rl::{Policy, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sim_config() -> SimConfig {
    SimConfig {
        fabric: FabricConfig {
            n_servers: 8,
            link_bps: 10e9,
        },
        thresholds: MlfqThresholds::default_web_search(),
        long_flow_cutoff_bytes: 1e6,
        decision_latency_s: 0.0,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dist = SizeDistribution::web_search();

    // Train a small lRLA teacher.
    println!("training the lRLA teacher on the fabric simulator...");
    let pool: Vec<LrlaEnv> = (0..3)
        .map(|i| {
            let mut wl = StdRng::seed_from_u64(100 + i);
            LrlaEnv::new(
                generate_flows(&dist, 8, 10e9, 0.6, 0.02, &mut wl),
                sim_config(),
            )
        })
        .collect();
    let mut agent = lrla_agent(
        &[32],
        TrainConfig {
            episodes_per_epoch: 4,
            max_steps: 400,
            ..Default::default()
        },
        &mut rng,
    );
    for _ in 0..20 {
        agent.train_epoch(&pool, &mut rng);
    }

    // Convert to a decision tree (Table 4: M = 2000 for AuTO agents)
    // through the same unified engine the ABR scenario uses.
    println!("converting lRLA into a decision tree...");
    let cfg = ConversionConfig {
        max_leaf_nodes: 2000,
        episodes_per_round: 3,
        max_steps: 400,
        dagger_rounds: 1,
        ..Default::default()
    };
    // The critic rides the batched value path: Eq.-1 afterstate lookups
    // are labelled one matrix-matrix pass per episode.
    let tree = ConversionPipeline::with_value(&pool, &agent.policy, agent.value_estimate())
        .conversion(cfg)
        .seed(42)
        .run();
    println!(
        "pipeline: {} states, {:.0} samples/s end-to-end on {} threads",
        tree.stats.states_collected,
        tree.stats.samples_per_sec(),
        tree.stats.threads
    );

    // FCT comparison on a fresh workload.
    let mut wl = StdRng::seed_from_u64(0xFE);
    let flows = generate_flows(&dist, 8, 10e9, 0.6, 0.02, &mut wl);
    let fct_of = |policy: &dyn Policy| {
        let mut sim = FlowSim::new(flows.clone(), sim_config());
        sim.run_with(|s, dp| decode_action(policy.act_greedy(&lrla_state(s, dp.flow_id)), 10e9));
        FctStats::from_flows(sim.completed())
    };
    let auto = fct_of(&agent.policy);
    let metis = fct_of(&tree.policy);
    println!("\n=== FCT (cf. paper Figure 15b) ===");
    println!(
        "AuTO (DNN):  mean {:.3} ms  p99 {:.3} ms",
        auto.mean_s * 1e3,
        auto.p99_s * 1e3
    );
    println!(
        "Metis tree:  mean {:.3} ms  p99 {:.3} ms  ({:.1}% of DNN mean)",
        metis.mean_s * 1e3,
        metis.p99_s * 1e3,
        metis.mean_s / auto.mean_s * 100.0
    );

    // Decision latency comparison (cf. paper Figure 16a).
    let obs = vec![0.2; LRLA_STATE_DIM];
    let dnn_lat = measure_latency(
        || {
            std::hint::black_box(agent.policy.act_greedy(&obs));
        },
        500,
        50,
    );
    let compiled = CompiledTree::compile(&tree.policy.tree);
    let tree_lat = measure_latency(
        || {
            std::hint::black_box(compiled.predict_class(&obs));
        },
        500,
        50,
    );
    println!("\n=== decision latency (cf. paper Figure 16a) ===");
    println!("DNN:           {:.2} us", dnn_lat.mean_s * 1e6);
    println!("compiled tree: {:.3} us", tree_lat.mean_s * 1e6);
    println!("speedup:       {:.0}x", dnn_lat.mean_s / tree_lat.mean_s);
}
