//! Quickstart: interpret a DNN policy with Metis in under a minute.
//!
//! We train a tiny actor-critic teacher on a contextual bandit, convert it
//! into a decision tree with the full §3.2 pipeline (DAgger collection,
//! Eq.-1 resampling, CCP pruning), and print the human-readable rules.
//!
//! Run with: `cargo run --release --example quickstart`

use metis::core::{convert_policy, ConversionConfig};
use metis::dt::{render, RenderOptions};
use metis::rl::env::test_envs::BanditEnv;
use metis::rl::{evaluate, ActorCritic, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A "DL-based networking system": a DNN policy on a 3-context task.
    let pool: Vec<BanditEnv> = (0..8).map(|s| BanditEnv::new(3, 20, s)).collect();
    let mut teacher = ActorCritic::new(
        3,
        3,
        &[16],
        TrainConfig {
            max_steps: 20,
            ..Default::default()
        },
        &mut rng,
    );
    for _ in 0..150 {
        teacher.train_epoch(&pool, &mut rng);
    }
    let teacher_score = evaluate(&pool[0], &teacher.policy, 4, 20, &mut rng);
    println!("teacher DNN mean return: {teacher_score:.2} / 20");

    // 2. Metis: convert the blackbox DNN into a decision tree.
    let cfg = ConversionConfig {
        max_leaf_nodes: 8,
        episodes_per_round: 8,
        max_steps: 20,
        ..Default::default()
    };
    let critic = teacher.critic.clone();
    let result = convert_policy(
        &pool,
        &teacher.policy,
        move |obs| critic.predict(obs)[0],
        &cfg,
        &mut rng,
    );
    let tree_score = evaluate(&pool[0], &result.policy, 4, 20, &mut rng);
    println!(
        "student tree mean return: {tree_score:.2} / 20 (fidelity {:.1}%)",
        result.fidelity_history.last().unwrap() * 100.0
    );

    // 3. The interpretation: transparent, deployable rules.
    println!("\nthe policy, as humans read it:");
    let mut tree = result.policy.tree;
    tree.feature_names = Some(vec!["ctx0".into(), "ctx1".into(), "ctx2".into()]);
    println!("{}", render(&tree, &RenderOptions::default()));
    println!(
        "tree artifact: {} bytes, {} leaves, depth {}",
        tree.artifact_bytes(),
        tree.n_leaves(),
        tree.depth()
    );
}
